"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The second observability pillar (see docs/observability.md). A
:class:`MetricsRegistry` holds named metrics, each of which may carry many
labeled series (``service``, ``cluster``, ``class`` — whatever the
instrumentation point attaches). Everything is keyed to *simulated* state:
values come from snapshots of engine/pool/gateway counters, never from wall
clocks (wall-time lives in :mod:`repro.obs.profiler`).

Exports are JSON (:meth:`MetricsRegistry.snapshot`) and a prometheus-style
text format (:meth:`MetricsRegistry.to_prometheus`) so artifacts feed both
machines and existing dashboards.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

__all__ = ["Counter", "DEFAULT_LATENCY_BUCKETS", "DEFAULT_MAX_LABEL_SETS",
           "Gauge", "Histogram", "HistogramState", "Metric",
           "MetricsRegistry"]

#: latency histogram bucket upper bounds in seconds (prometheus-ish
#: defaults shifted toward the sub-second range this simulator lives in)
DEFAULT_LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                           1.0, 2.5, 5.0)

#: default per-metric label-set cap (the cardinality guard); generous for
#: per-(service, cluster, class) series, tripped by per-request-id labels
DEFAULT_MAX_LABEL_SETS = 1024

#: a labeled series key: sorted (label, value) pairs
_LabelKey = tuple[tuple[str, str], ...]

#: series key absorbing samples rejected by the cardinality guard
_OVERFLOW_KEY: _LabelKey = (("overflow", "true"),)

#: help strings for the guard's self-monitoring metrics
_GUARD_TOTAL_HELP = ("label-sets folded into overflow by the cardinality "
                     "guard, across all metrics")
_GUARD_GAUGE_HELP = ("label-sets folded into overflow, per tripped metric")


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping for label values."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()
                   ) -> str:
    items = [*key, *extra]
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in items)
    return "{" + body + "}"


class Metric:
    """Base: one named metric holding labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._series: dict[_LabelKey, object] = {}
        #: label-set cap (set by the owning registry; None = unlimited)
        self.max_label_sets: int | None = None
        #: samples redirected to the overflow series by the guard
        self.dropped_label_sets = 0

    def labels(self) -> list[_LabelKey]:
        return sorted(self._series)

    def series_count(self) -> int:
        return len(self._series)

    def _admit(self, key: _LabelKey) -> _LabelKey:
        """Cardinality guard: fold new label-sets past the cap into one
        ``{overflow="true"}`` series (loud, bounded, never silent)."""
        if (key in self._series or self.max_label_sets is None
                or len(self._series) < self.max_label_sets):
            return key
        if self.dropped_label_sets == 0:
            warnings.warn(
                f"metric {self.name!r} exceeded max_label_sets="
                f"{self.max_label_sets}; new label-sets fold into "
                f'{{overflow="true"}}', RuntimeWarning, stacklevel=4)
        self.dropped_label_sets += 1
        return _OVERFLOW_KEY


class Counter(Metric):
    """Monotonically increasing value per labeled series."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = self._admit(_label_key(labels))
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class Gauge(Metric):
    """Point-in-time value per labeled series (set, not accumulated)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._series[self._admit(_label_key(labels))] = float(value)

    def value(self, **labels: str) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


@dataclass
class HistogramState:
    """Cumulative fixed-bucket counts plus sum/count for one series."""

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)   # + overflow

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram(Metric):
    """Fixed-bucket distribution per labeled series."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"buckets must be a sorted non-empty sequence, "
                             f"got {buckets}")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = self._admit(_label_key(labels))
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = HistogramState(self.buckets)
        state.observe(value)

    def state(self, **labels: str) -> HistogramState | None:
        return self._series.get(_label_key(labels))


class MetricsRegistry:
    """Named metrics with idempotent registration.

    >>> registry = MetricsRegistry()
    >>> registry.counter("events_total").inc(3, cluster="west")
    >>> registry.counter("events_total").value(cluster="west")
    3.0
    """

    def __init__(self, max_label_sets: int | None = DEFAULT_MAX_LABEL_SETS
                 ) -> None:
        if max_label_sets is not None and max_label_sets < 1:
            raise ValueError(
                f"max_label_sets must be >= 1 or None, got {max_label_sets}")
        self.max_label_sets = max_label_sets
        self._metrics: dict[str, Metric] = {}

    def _get(self, cls: type, name: str, help_text: str,
             **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help_text, **kwargs)
            metric.max_label_sets = self.max_label_sets
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def guard_health(self) -> dict[str, int]:
        """Per-metric dropped-label-set counts: the guard's own health.

        Only metrics that actually tripped the cardinality cap appear;
        an empty dict means every metric is within bounds.
        """
        return {name: self._metrics[name].dropped_label_sets
                for name in self.names()
                if self._metrics[name].dropped_label_sets}

    # ------------------------------------------------------------- exports

    def snapshot(self) -> dict:
        """JSON-friendly dump: metric → kind/help/series."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            series = []
            for key in metric.labels():
                value = metric._series[key]
                entry: dict[str, object] = {"labels": dict(key)}
                if isinstance(value, HistogramState):
                    entry.update(sum=value.total, count=value.count,
                                 mean=value.mean,
                                 buckets=[list(b) for b in zip(
                                     [*value.buckets, "+Inf"],
                                     value.cumulative())])
                else:
                    entry["value"] = value
                series.append(entry)
            out[name] = {"kind": metric.kind, "help": metric.help_text,
                         "series": series}
            if metric.dropped_label_sets:
                out[name]["dropped_label_sets"] = metric.dropped_label_sets
        # the guard's own health rides along as first-class metrics (not
        # just the one-shot warning): an aggregate counter that is always
        # present (0 = healthy) plus a per-tripped-metric gauge
        tripped = self.guard_health()
        out["obs_dropped_label_sets"] = {
            "kind": "counter",
            "help": _GUARD_TOTAL_HELP,
            "series": [{"labels": {},
                        "value": float(sum(tripped.values()))}],
        }
        if tripped:
            out["obs_metric_overflow"] = {
                "kind": "gauge",
                "help": _GUARD_GAUGE_HELP,
                "series": [{"labels": {"metric": name},
                            "value": float(count)}
                           for name, count in sorted(tripped.items())],
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one string, no trailing IO)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key in metric.labels():
                value = metric._series[key]
                if isinstance(value, HistogramState):
                    bounds = [*(repr(b) for b in value.buckets), "+Inf"]
                    for bound, count in zip(bounds, value.cumulative()):
                        labels = _render_labels(key, (("le", bound),))
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = _render_labels(key)
                    lines.append(f"{name}_sum{labels} {value.total}")
                    lines.append(f"{name}_count{labels} {value.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {value}")
        tripped = self.guard_health()
        lines.append(f"# HELP obs_dropped_label_sets {_GUARD_TOTAL_HELP}")
        lines.append("# TYPE obs_dropped_label_sets counter")
        lines.append(f"obs_dropped_label_sets {sum(tripped.values())}")
        if tripped:
            lines.append(f"# HELP obs_metric_overflow {_GUARD_GAUGE_HELP}")
            lines.append("# TYPE obs_metric_overflow gauge")
            for name, count in sorted(tripped.items()):
                labels = _render_labels(((("metric", name),)))
                lines.append(f"obs_metric_overflow{labels} {count}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"
