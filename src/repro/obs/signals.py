"""A deterministic, bounded, in-sim signal bus for predictive telemetry.

The predictive pillar (:mod:`repro.obs.forecast`, :mod:`repro.obs.anomaly`)
produces *events* — forecasts, anomalies, predicted SLO breaches — that
more than one consumer cares about: harnesses score them, the provenance
flight recorder freezes on them, and ROADMAP item 4's event-driven
controller will subscribe to them. :class:`SignalBus` is the seam between
producer and consumers: a bounded, sim-timestamped, topic-keyed ring.

Determinism is the design constraint. Signals carry the simulated clock
(never a wall clock), sequence numbers are assigned in publish order,
subscribers are invoked synchronously in registration order, and the ring
bound evicts oldest-first with an explicit drop counter — never silently.
Publishing is pure bookkeeping: the bus never touches mesh or engine
state, so an enabled bus cannot perturb a run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

__all__ = ["DEFAULT_SIGNAL_CAPACITY", "Signal", "SignalBus",
           "TOPIC_ANOMALY", "TOPIC_FORECAST", "TOPIC_PREDICTED_BREACH"]

#: per-topic ring capacity default
DEFAULT_SIGNAL_CAPACITY = 4096

#: one per-series forecast snapshot per scrape tick
TOPIC_FORECAST = "forecast"
#: residual z-score / CUSUM firings over scraped series
TOPIC_ANOMALY = "anomaly"
#: projected SLO burn-rate breaches with lead-time estimates
TOPIC_PREDICTED_BREACH = "predicted_breach"


@dataclass(frozen=True)
class Signal:
    """One sim-timestamped event on a topic."""

    #: topic the signal was published to
    topic: str
    #: simulated clock at publish time
    sim_time: float
    #: bus-wide publish sequence number (total order across topics)
    seq: int
    #: producer-defined payload (JSON-serializable dict by convention)
    payload: dict = field(default_factory=dict)
    #: producing component, e.g. ``"forecast"``, ``"anomaly"``, ``"slo"``
    source: str = ""

    def as_dict(self) -> dict:
        return {"topic": self.topic, "sim_time": self.sim_time,
                "seq": self.seq, "source": self.source,
                "payload": self.payload}


class SignalBus:
    """Bounded publish/subscribe fan-out keyed by topic string."""

    def __init__(self, capacity: int = DEFAULT_SIGNAL_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self._subscribers: dict[str, list] = {}
        self._seq = 0
        #: signals evicted from a full ring, per topic (never silent)
        self.dropped: dict[str, int] = {}

    # ---------------------------------------------------------- publish

    def publish(self, topic: str, sim_time: float, payload: dict,
                source: str = "") -> Signal:
        """Append a signal and synchronously notify topic subscribers."""
        signal = Signal(topic=topic, sim_time=sim_time, seq=self._seq,
                        payload=payload, source=source)
        self._seq += 1
        ring = self._rings.get(topic)
        if ring is None:
            ring = deque()
            self._rings[topic] = ring
        if len(ring) >= self.capacity:
            ring.popleft()
            self.dropped[topic] = self.dropped.get(topic, 0) + 1
        ring.append(signal)
        for callback in self._subscribers.get(topic, ()):
            callback(signal)
        return signal

    def subscribe(self, topic: str, callback) -> None:
        """Invoke ``callback(signal)`` on every future publish to ``topic``.

        Callbacks run synchronously, in registration order, on the
        publisher's (sim-time) call stack — there is no hidden queue, so
        subscriber effects land at a deterministic point in the run.
        """
        self._subscribers.setdefault(topic, []).append(callback)

    # ------------------------------------------------------------- reads

    def history(self, topic: str) -> list:
        """Retained signals for one topic, oldest first."""
        return list(self._rings.get(topic, ()))

    def topics(self) -> list:
        """Topics that have seen at least one publish, sorted."""
        return sorted(self._rings)

    def latest(self, topic: str) -> Signal | None:
        ring = self._rings.get(topic)
        return ring[-1] if ring else None

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def to_jsonl_lines(self) -> list:
        """All retained signals as JSON lines, in publish order."""
        signals = sorted(
            (s for ring in self._rings.values() for s in ring),
            key=lambda s: s.seq)
        return [json.dumps(s.as_dict(), sort_keys=True) for s in signals]
