"""Pure-python trace analysis: critical paths and latency breakdowns.

Works on the :class:`~repro.obs.tracing.TraceNode` trees the tracer
stitches. Everything here is derived arithmetic over simulated timestamps —
no clocks, no IO — so analyses are as reproducible as the traces themselves.

The questions these answer are the ones SLATE's service-layer vantage point
exists to answer (§3.1): *where* did a request's latency accrue (queueing at
a saturated pool, execution, WAN hops to a remote cluster) and *which* chain
of calls actually bounded completion time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.request import Span
from .tracing import TraceNode

__all__ = ["HopBreakdown", "critical_path", "hop_breakdown",
           "trace_summary"]


@dataclass(frozen=True)
class HopBreakdown:
    """Where one span's wall-to-wall (simulated) time went.

    ``downstream`` is time spent blocked on children (and the WAN legs to
    reach them): total minus local queue wait minus local execution.
    """

    service: str
    cluster: str
    remote: bool
    queue_wait: float
    exec_time: float
    downstream: float
    wan_rtt: float
    total: float

    @classmethod
    def of(cls, node: TraceNode) -> "HopBreakdown":
        span = node.span
        total = span.total_time
        downstream = total - span.queue_wait - span.exec_time
        return cls(
            service=span.service,
            cluster=span.cluster,
            remote=span.remote,
            queue_wait=span.queue_wait,
            exec_time=span.exec_time,
            downstream=max(downstream, 0.0),
            wan_rtt=node.wan_rtt,
            total=total,
        )

    def as_dict(self) -> dict:
        return {
            "service": self.service,
            "cluster": self.cluster,
            "remote": self.remote,
            "queue_wait": self.queue_wait,
            "exec_time": self.exec_time,
            "downstream": self.downstream,
            "wan_rtt": self.wan_rtt,
            "total": self.total,
        }


def critical_path(root: TraceNode) -> list[TraceNode]:
    """The chain of spans that bounded this (sub)trace's completion.

    From the root, repeatedly descend into the child whose span finished
    last — with synchronous fan-out (the simulator's call model), the
    last-finishing child is the one the parent was still waiting on, so the
    resulting root→leaf chain is the trace's critical path.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children,
                   key=lambda child: (child.span.end_time,
                                      child.span.start_time))
        path.append(node)
    return path


def hop_breakdown(nodes) -> list[HopBreakdown]:
    """Per-hop queue/exec/downstream/WAN split for a path or node list."""
    return [HopBreakdown.of(node) for node in nodes]


def trace_summary(roots: list[TraceNode]) -> dict:
    """Aggregate view of one request's stitched trees.

    Returns span/hop counts, end-to-end duration, the critical path (as
    ``service@cluster`` hops with per-hop breakdowns), and the summed
    queue/exec/WAN components along that path.
    """
    if not roots:
        return {"spans": 0, "roots": 0, "duration": 0.0,
                "cross_cluster_hops": 0, "critical_path": [],
                "critical_queue": 0.0, "critical_exec": 0.0,
                "critical_wan": 0.0}
    spans: list[Span] = [node.span
                         for root in roots for node in root.walk()]
    start = min(span.enqueue_time for span in spans)
    end = max(span.end_time for span in spans)
    # Analyze the tree that finished last: it bounded the request.
    main_root = max(roots, key=lambda r: max(n.span.end_time
                                             for n in r.walk()))
    path = critical_path(main_root)
    breakdowns = hop_breakdown(path)
    return {
        "spans": len(spans),
        "roots": len(roots),
        "duration": end - start,
        "cross_cluster_hops": sum(1 for span in spans if span.remote),
        "critical_path": [
            {"hop": f"{b.service}@{b.cluster}", **b.as_dict()}
            for b in breakdowns],
        "critical_queue": sum(b.queue_wait for b in breakdowns),
        "critical_exec": sum(b.exec_time for b in breakdowns),
        "critical_wan": sum(b.wan_rtt for b in breakdowns),
    }
