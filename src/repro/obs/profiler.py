"""Control-plane profiler: where the *wall* time goes.

The one observability component that intentionally reads a wall clock.
Simulated components must never do that (lint rule D02), but the control
plane's own compute cost — LP assembly, HiGHS solves, epoch handling — is
real wall time and is exactly what the ROADMAP's production-scale push needs
measured (GATE's evaluation hinges on the same solver hot-path profiling).

This module lives in ``repro.obs`` (outside the deterministic dirs) and
never feeds results back into simulated behaviour, so profiling a run
cannot change its outcome.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["ControlPlaneProfiler", "SectionStats"]


@dataclass
class SectionStats:
    """Aggregate wall-time stats for one named profiler section."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class ControlPlaneProfiler:
    """Wall-clock section timer for controller/solver work.

    >>> profiler = ControlPlaneProfiler()
    >>> with profiler.section("epoch"):
    ...     pass   # plan, distribute, ...
    """

    def __init__(self) -> None:
        self._sections: dict[str, SectionStats] = {}
        self.epoch_durations: list[float] = []

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stats = self._sections.get(name)
            if stats is None:
                stats = self._sections[name] = SectionStats()
            stats.add(elapsed)
            if name == "epoch":
                self.epoch_durations.append(elapsed)

    def stats(self, name: str) -> SectionStats | None:
        return self._sections.get(name)

    def section_names(self) -> list[str]:
        return sorted(self._sections)

    def summary(self) -> dict:
        """JSON-friendly per-section count/total/mean/max summary."""
        return {
            name: {
                "count": stats.count,
                "total_s": stats.total,
                "mean_s": stats.mean,
                "max_s": stats.max,
            }
            for name, stats in sorted(self._sections.items())
        }
