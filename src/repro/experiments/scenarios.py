"""Scenario constructors: one per paper figure (see DESIGN.md §3).

Each ``figN_*`` function returns the :class:`Scenario` plus the policies the
figure compares, parameterised the way §4 describes. Absolute latencies will
differ from the paper's testbed (our substrate is a simulator), but the
relationships the figures demonstrate — who wins, roughly by how much, and
where behaviour changes — are reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..baselines.locality import LocalityFailoverPolicy
from ..baselines.waterfall import WaterfallConfig, WaterfallPolicy
from ..core.controller.global_controller import GlobalControllerConfig
from ..core.controller.policy import SlatePolicy
from ..core.optimizer.problem import TEProblem
from ..sim.apps import (AppSpec, CallEdge, TrafficClassSpec,
                        anomaly_detection_app, linear_chain_app,
                        two_class_app)
from ..sim.network import EgressPricing, LatencyMatrix
from ..sim.request import RequestAttributes
from ..sim.rng import RngRegistry
from ..sim.topology import (ClusterSpec, DeploymentSpec,
                            gcp_four_region_latency, two_region_latency)
from ..sim.traces import DemandTimeline, diurnal_timeline
from ..sim.workload import DemandMatrix
from .harness import Scenario

__all__ = ["ChaosOutageSetup", "DiurnalControlSetup", "FigureSetup",
           "SloBurnrateSetup",
           "chaos_outage_setup", "diurnal_control_setup",
           "slo_burnrate_setup",
           "fig6a_how_much", "fig6b_which_cluster",
           "fig6c_multihop", "fig6d_traffic_classes",
           "fig4_offload_threshold_problem", "fig3_threshold_scenario",
           "locality_failover_policy", "waterfall_with_absolute_threshold",
           "planet_scale_problem", "synthetic_te_problem",
           "synthetic_topology"]


@dataclass
class FigureSetup:
    """A scenario plus the policies a figure compares."""

    scenario: Scenario
    slate: SlatePolicy
    waterfall: WaterfallPolicy

    @property
    def policies(self) -> list:
        return [self.slate, self.waterfall]


def fig6a_how_much(west_rps: float = 700.0, east_rps: float = 100.0,
                   one_way_ms: float = 25.0, replicas: int = 5,
                   threshold_rho: float = 0.98,
                   duration: float = 40.0, seed: int = 42) -> FigureSetup:
    """§4.1 / Fig. 6a: *how much* to route away from an overloaded cluster.

    Linear 3-service chain in two clusters. West is overloaded (default
    700 RPS against a 500 RPS physical capacity per service); Waterfall's
    aggressive static threshold (0.98 × capacity) keeps too much traffic
    local and queues, while SLATE offloads exactly until the marginal
    queueing gain stops paying for the extra WAN RTT.
    """
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    scenario = Scenario(name="fig6a-how-much", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 5, seed=seed)
    waterfall = WaterfallPolicy(WaterfallConfig.from_deployment(
        app, deployment, threshold_rho=threshold_rho))
    slate = SlatePolicy(GlobalControllerConfig(rho_max=0.95))
    return FigureSetup(scenario, slate, waterfall)


def fig6b_which_cluster(overload_rps: float = 590.0,
                        background_rps: float = 100.0,
                        replicas: int = 5, threshold_rho: float = 0.8,
                        duration: float = 40.0, seed: int = 42) -> FigureSetup:
    """§4.2 / Fig. 6b: *which cluster* to route to, on the GCP topology.

    OR and IOW are overloaded. Waterfall greedily spills both to UT — the
    nearest cluster with (independently judged) spare capacity — driving UT
    to its limit while SC idles. SLATE's global matching also uses SC.
    """
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["OR", "UT", "IOW", "SC"], replicas=replicas,
        latency=gcp_four_region_latency())
    demand = DemandMatrix({
        ("default", "OR"): overload_rps,
        ("default", "IOW"): overload_rps,
        ("default", "UT"): background_rps,
        ("default", "SC"): background_rps,
    })
    scenario = Scenario(name="fig6b-which-cluster", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 5, seed=seed)
    waterfall = WaterfallPolicy(WaterfallConfig.from_deployment(
        app, deployment, threshold_rho=threshold_rho), coordinated=False)
    slate = SlatePolicy(GlobalControllerConfig(rho_max=0.95))
    return FigureSetup(scenario, slate, waterfall)


def fig6c_multihop(west_rps: float = 300.0, east_rps: float = 100.0,
                   one_way_ms: float = 25.0,
                   threshold_rho: float = 0.8,
                   cost_weight: float = 10000.0,
                   duration: float = 40.0, seed: int = 42) -> FigureSetup:
    """§4.3 / Fig. 6c: *where in the topology* to cross clusters.

    Anomaly-detection app FR→MP→DB; DB is absent in West (regulation /
    failure). The DB→MP response is ~10x the MP→FR response, so cutting at
    MP→DB (what locality failover / Waterfall do) pays ~10x the egress of
    cutting at FR→MP (what SLATE chooses). West's MP pool is also tight, so
    multi-hop foresight wins on latency too.
    """
    app = anomaly_detection_app()
    deployment = DeploymentSpec(
        clusters=[
            ClusterSpec("west", {"FR": 4, "MP": 5}),           # no DB
            ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8}),
        ],
        latency=two_region_latency(one_way_ms),
        pricing=EgressPricing(default_price_per_gb=0.02),
    )
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    scenario = Scenario(name="fig6c-multihop", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 5, seed=seed)
    waterfall = WaterfallPolicy(WaterfallConfig.from_deployment(
        app, deployment, threshold_rho=threshold_rho))
    slate = SlatePolicy(GlobalControllerConfig(rho_max=0.95,
                                               cost_weight=cost_weight))
    return FigureSetup(scenario, slate, waterfall)


def locality_failover_policy() -> LocalityFailoverPolicy:
    """The second baseline Fig. 6c discusses."""
    return LocalityFailoverPolicy()


def fig6d_traffic_classes(west_light_rps: float = 450.0,
                          west_heavy_rps: float = 130.0,
                          east_light_rps: float = 100.0,
                          east_heavy_rps: float = 30.0,
                          one_way_ms: float = 25.0, replicas: int = 8,
                          threshold_rho: float = 0.8,
                          duration: float = 40.0, seed: int = 42) -> FigureSetup:
    """§4.4 / Fig. 6d: *which subset* (traffic class) to route away.

    One chain serves cheap L and expensive H requests (3 ms vs 45 ms). West
    is overloaded by H volume. Waterfall offloads the same fraction of every
    class — many requests pay the WAN RTT for little load relief — while
    SLATE moves mostly H requests: fewer crossings, better balance.
    """
    app = two_class_app(light_exec=0.003, heavy_exec=0.045, n_services=2)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({
        ("L", "west"): west_light_rps,
        ("H", "west"): west_heavy_rps,
        ("L", "east"): east_light_rps,
        ("H", "east"): east_heavy_rps,
    })
    scenario = Scenario(name="fig6d-traffic-classes", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 5, seed=seed)
    waterfall = WaterfallPolicy(WaterfallConfig.from_deployment(
        app, deployment, threshold_rho=threshold_rho))
    slate = SlatePolicy(GlobalControllerConfig(rho_max=0.95))
    return FigureSetup(scenario, slate, waterfall)


@dataclass
class DiurnalControlSetup:
    """A time-varying scenario plus the adaptive policy driving it."""

    scenario: Scenario
    policy: SlatePolicy
    timeline: DemandTimeline


def diurnal_control_setup(base_rps: float = 150.0,
                          amplitude: float = 0.5,
                          duration: float = 240.0,
                          epoch: float = 10.0,
                          demand_quantum: float = 25.0,
                          replicas: int = 5,
                          seed: int = 42,
                          period: float | None = None
                          ) -> DiurnalControlSetup:
    """Adaptive SLATE under follow-the-sun diurnal demand (§2, §5).

    Two clusters carry opposite-phase sinusoidal demand over one full
    period (``period`` defaults to ``duration``; pass a divisor of the
    duration to fit several cycles — what the Holt–Winters forecaster's
    seasonal component wants to see), with the adaptive Global Controller
    re-planning every epoch.
    With ``demand_quantum`` hysteresis, epochs near the sinusoid's flat
    peaks quantize to the same demand estimate and **replay** the cached
    solve, while the steep flanks shift the estimate past a quantum and
    force a fresh **re-plan** — the exact mix the decision log
    (``repro obs decisions``) exists to make visible.
    """
    import math

    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    base = DemandMatrix({("default", "west"): base_rps,
                         ("default", "east"): base_rps})
    timeline = diurnal_timeline(
        base, duration, period=period if period is not None else duration,
        amplitude=amplitude,
        phase_by_cluster={"west": 0.0, "east": math.pi},
        steps_per_period=12)
    scenario = Scenario(name="diurnal-control", app=app,
                        deployment=deployment, demand=base,
                        duration=duration, warmup=duration / 6,
                        seed=seed, epoch=epoch)
    policy = SlatePolicy(
        # trust the spec's compute times (see docs/performance.md): with
        # profile learning on, learned exec times jitter every epoch and no
        # two models would ever repeat, hiding the hysteresis behaviour
        # this setup exists to demonstrate
        GlobalControllerConfig(rho_max=0.95,
                               demand_quantum=demand_quantum,
                               learn_profiles=False),
        adaptive=True)
    return DiurnalControlSetup(scenario, policy, timeline)


@dataclass
class SloBurnrateSetup:
    """A surge scenario plus the SLO rules that should burn through it."""

    scenario: Scenario
    policy: SlatePolicy
    timeline: DemandTimeline
    slo_rules: tuple

    def observability(self, **overrides):
        """The config a run of this setup wants: decisions + scrapes + SLO."""
        from ..obs.config import ObservabilityConfig
        settings = dict(decisions=True, timeseries=True, slo=self.slo_rules,
                        scrape_interval=1.0)
        settings.update(overrides)
        return ObservabilityConfig(**settings)


def slo_burnrate_setup(base_rps: float = 250.0,
                       surge_rps: float = 650.0,
                       background_rps: float = 100.0,
                       surge_start: float = 40.0,
                       surge_end: float = 100.0,
                       duration: float = 180.0,
                       epoch: float = 10.0,
                       latency_target: float = 0.25,
                       replicas: int = 5,
                       seed: int = 42) -> SloBurnrateSetup:
    """A demand surge that burns a latency SLO until the controller reacts.

    Linear 3-service chain in two clusters (per-service capacity ≈
    ``replicas / exec_time`` = 500 RPS). West starts comfortable at
    ``base_rps``, surges past local capacity to ``surge_rps`` over
    ``[surge_start, surge_end)``, then recovers. The initial plan (computed
    for the base demand) keeps everything local, so the surge queues in
    West and the latency SLO's fast *and* slow burn windows blow through
    their thresholds → the alert fires. The adaptive Global Controller
    re-plans at the next epoch boundary and offloads the overflow to East;
    queues drain, burn rates fall back under both thresholds, and the
    alert resolves — a firing interval that *overlaps* a fresh ``solved``
    decision in the decision log (asserted in ``tests/test_obs_slo.py``).
    """
    from ..obs.slo import default_latency_slo

    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    base = DemandMatrix({("default", "west"): base_rps,
                         ("default", "east"): background_rps})
    surge = DemandMatrix({("default", "west"): surge_rps,
                          ("default", "east"): background_rps})
    # short runs (CLI --duration) may end mid-surge: drop unreached frames
    keyframes = [(time, demand) for time, demand
                 in [(0.0, base), (surge_start, surge), (surge_end, base)]
                 if time < duration]
    timeline = DemandTimeline(keyframes=keyframes, end=duration)
    scenario = Scenario(name="slo-burnrate", app=app,
                        deployment=deployment, demand=base,
                        duration=duration, warmup=duration / 6,
                        seed=seed, epoch=epoch)
    policy = SlatePolicy(
        # fixed exec profiles for the same reason as diurnal_control_setup:
        # the demonstration needs repeatable solve/replay behaviour
        GlobalControllerConfig(rho_max=0.95, demand_quantum=25.0,
                               learn_profiles=False),
        adaptive=True)
    rules = (default_latency_slo(latency_target, budget=0.02,
                                 fast_window=10.0, slow_window=30.0,
                                 fast_burn=4.0, slow_burn=1.0),)
    return SloBurnrateSetup(scenario, policy, timeline, rules)


@dataclass
class ChaosOutageSetup:
    """A fault campaign plus everything needed to run and score it."""

    scenario: Scenario
    policy: SlatePolicy
    plan: object       # a repro.chaos.FaultPlan
    max_rule_age: float
    fallback: str

    def observability(self, **overrides):
        """Decision log on, so re-plans can be attributed to faults."""
        from ..obs.config import ObservabilityConfig
        settings = dict(decisions=True)
        settings.update(overrides)
        return ObservabilityConfig(**settings)


def chaos_outage_setup(west_rps: float = 480.0,
                       east_rps: float = 100.0,
                       one_way_ms: float = 25.0,
                       fault_start: float = 10.0,
                       fault_duration: float = 14.0,
                       wan_multiplier: float = 20.0,
                       duration: float = 40.0,
                       epoch: float = 2.0,
                       max_rule_age: float = 5.0,
                       fallback: str = "locality",
                       replicas: int = 5,
                       seed: int = 42) -> ChaosOutageSetup:
    """§5 challenge campaign: Global Controller outage + WAN degradation.

    West runs hot (default 480 RPS against a 500 RPS per-service
    capacity), so SLATE's plan offloads part of the traffic to East —
    worth 2×25 ms of WAN RTT to escape the M/M/c queueing knee. At
    ``fault_start`` the Global Controller goes dark *and* the west<->east
    link degrades ``wan_multiplier``-fold: the frozen offload rules now
    pay ~1 s RTT per crossing. A Cluster Controller armed with
    ``max_rule_age`` + a local fallback detects the stale rules within a
    few epochs and fails over to local-first routing (p95 drops back to
    local queueing, ~3× better than frozen rules); when the controller
    returns it re-plans against the healed matrix and reconciles the
    fallback. Scored by :func:`repro.chaos.run_chaos` +
    :meth:`~repro.chaos.ChaosRunResult.resilience`.
    """
    from ..chaos.plan import ControlPlaneOutage, FaultPlan, WanFault

    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    scenario = Scenario(name="chaos-outage", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 8,
                        seed=seed, epoch=epoch)
    policy = SlatePolicy(
        GlobalControllerConfig(rho_max=0.95, learn_profiles=False),
        adaptive=True)
    plan = FaultPlan((
        ControlPlaneOutage(start=fault_start, duration=fault_duration),
        WanFault(start=fault_start, duration=fault_duration,
                 src="west", dst="east", multiplier=wan_multiplier),
    ))
    return ChaosOutageSetup(scenario, policy, plan,
                            max_rule_age=max_rule_age, fallback=fallback)


def fig4_offload_threshold_problem(one_way_ms: float, west_rps: float,
                                   east_rps: float = 100.0,
                                   replicas: int = 6) -> Scenario:
    """§4.1 / Fig. 4: the empirical offload point SLATE computes.

    Two clusters, East held at 100 RPS, West swept 100→1000 RPS, WAN one-way
    latency in {5, 25, 50} ms. The bench solves SLATE's optimizer at each
    point and reports the locally served RPS — the "threshold" curve whose
    break point moves with network latency.
    """
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    return Scenario(name=f"fig4-owd{one_way_ms:g}ms-west{west_rps:g}",
                    app=app, deployment=deployment, demand=demand,
                    duration=30.0, warmup=5.0)


def fig3_threshold_scenario(west_rps: float, east_rps: float = 100.0,
                            one_way_ms: float = 25.0,
                            replicas: int = 5) -> Scenario:
    """§4.1 / Fig. 3: the static-threshold pathology.

    The bench evaluates Waterfall with a conservative threshold, an
    aggressive threshold, and SLATE over a load sweep: the conservative
    threshold wastes WAN RTTs at low load, the aggressive one queues at
    high load, and no single static value matches SLATE everywhere.
    """
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    return Scenario(name=f"fig3-west{west_rps:g}", app=app,
                    deployment=deployment, demand=demand,
                    duration=30.0, warmup=5.0)


def waterfall_with_absolute_threshold(app: AppSpec,
                                      deployment: DeploymentSpec,
                                      rps_threshold: float) -> WaterfallPolicy:
    """Waterfall with one static RPS threshold for every pool (Fig. 3)."""
    capacities = {
        (service, cluster.name): rps_threshold
        for cluster in deployment.clusters
        for service, count in cluster.replicas.items() if count > 0
    }
    return WaterfallPolicy(WaterfallConfig(capacities))


# --------------------------------------------------------------- synthetic
# Planet-scale synthetic instances for the scalability benchmarks. All
# randomness flows through RngRegistry streams (D01), so a given
# (dimensions, seed) pair names exactly one problem on every machine.

def synthetic_topology(n_clusters: int, seed: int = 0,
                       base_delay_ms: float = 5.0,
                       spread_delay_ms: float = 60.0) -> LatencyMatrix:
    """Deterministic n-cluster WAN: seeded points on a unit square.

    Each cluster gets a 2-D coordinate from the ``synthetic-topology``
    RNG stream; one-way delay between two clusters is ``base_delay_ms``
    plus ``spread_delay_ms`` scaled by their Euclidean distance, which
    yields the triangle-inequality-respecting spread (a few ms regional,
    tens of ms cross-ocean) the contraction heuristics expect. Cluster
    names are zero-padded (``c000`` ...) so lexical order is index order.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = RngRegistry(seed=seed).stream(f"synthetic-topology/{n_clusters}")
    width = max(3, len(str(n_clusters - 1)))
    names = [f"c{index:0{width}d}" for index in range(n_clusters)]
    coords = [(float(rng.random()), float(rng.random()))
              for _ in range(n_clusters)]
    delays = {}
    for i in range(n_clusters):
        for j in range(i + 1, n_clusters):
            dx = coords[i][0] - coords[j][0]
            dy = coords[i][1] - coords[j][1]
            distance = math.hypot(dx, dy)
            delays[(names[i], names[j])] = (
                base_delay_ms + spread_delay_ms * distance) / 1000.0
    return LatencyMatrix(names, delays)


def synthetic_te_problem(n_clusters: int, n_services: int, n_classes: int,
                         rps_per_class: float = 50.0,
                         exec_time: float = 0.005,
                         replication: float = 1.0,
                         ingresses_per_class: int | None = None,
                         replicas: int | None = None,
                         seed: int = 0,
                         headroom: float = 2.0,
                         **problem_kwargs) -> TEProblem:
    """Seeded synthetic TE instance for scaling sweeps.

    Every traffic class is a linear chain over the same ``n_services``
    fleet (the worst case for model size: all classes touch all
    services). Two knobs make planet scale tractable:

    ``replication``
        Fraction of clusters each service is deployed in (1.0 = deployed
        everywhere). Partial placements pick a seeded subset per service,
        rotated so load spreads across the fleet.
    ``ingresses_per_class``
        When set, each class receives demand at only this many seeded
        ingress clusters instead of all of them — the sparse-demand
        regime where the path formulation's variable count stops scaling
        with cluster count.

    ``replicas`` defaults to a per-deployed-cluster count sized so fleet
    capacity is ``headroom`` times the offered load — large instances
    stay feasible without hand-tuning.
    """
    if replication <= 0 or replication > 1:
        raise ValueError(f"replication must be in (0, 1], got {replication}")
    latency = synthetic_topology(n_clusters, seed=seed)
    clusters = list(latency.clusters)
    services = [f"svc{index}" for index in range(n_services)]
    registry = RngRegistry(seed=seed)

    classes = {}
    for index in range(n_classes):
        name = f"class{index}"
        classes[name] = TrafficClassSpec(
            name=name,
            attributes=RequestAttributes.make(services[0], "GET", f"/{name}"),
            root_service=services[0],
            edges=[CallEdge(services[i], services[i + 1])
                   for i in range(n_services - 1)],
            exec_time={service: exec_time for service in services},
        )
    app = AppSpec(name="synthetic", classes=classes)

    if ingresses_per_class is None:
        demand = {(cls, cluster): rps_per_class
                  for cls in classes for cluster in clusters}
    else:
        if not 1 <= ingresses_per_class <= n_clusters:
            raise ValueError(
                f"ingresses_per_class must be in [1, {n_clusters}], "
                f"got {ingresses_per_class}")
        ingress_rng = registry.stream("synthetic-demand/ingresses")
        demand = {}
        for cls in sorted(classes):
            chosen = ingress_rng.choice(len(clusters),
                                        size=ingresses_per_class,
                                        replace=False)
            for slot in sorted(int(i) for i in chosen):
                demand[(cls, clusters[slot])] = rps_per_class

    deployed_per_service = max(1, round(replication * n_clusters))
    if replicas is None:
        offered = rps_per_class * n_classes * (
            n_clusters if ingresses_per_class is None else ingresses_per_class)
        replicas = max(2, math.ceil(
            headroom * offered * exec_time / deployed_per_service))
    placement_rng = registry.stream("synthetic-deployment/placement")
    placements: dict[str, dict[str, int]] = {c: {} for c in clusters}
    for service in services:
        if deployed_per_service >= n_clusters:
            chosen = range(n_clusters)
        else:
            chosen = sorted(int(i) for i in placement_rng.choice(
                n_clusters, size=deployed_per_service, replace=False))
        for slot in chosen:
            placements[clusters[slot]][service] = replicas
    deployment = DeploymentSpec(
        [ClusterSpec(name, placements[name]) for name in clusters],
        latency)

    return TEProblem.from_specs(app, deployment,
                                DemandMatrix(demand), **problem_kwargs)


def planet_scale_problem(n_clusters: int = 100, n_services: int = 5,
                         n_classes: int = 1000,
                         seed: int = 0, **kwargs) -> TEProblem:
    """The ISSUE 7 planet-scale target: 100 clusters x 1000 classes.

    Sparse by construction — each class enters at 2 seeded ingress
    clusters and each service is deployed in 20% of the fleet — because
    that is the regime the path formulation (`formulation="path"`) is
    built for: path-variable count tracks demand entries, not clusters.
    """
    kwargs.setdefault("ingresses_per_class", 2)
    kwargs.setdefault("replication", 0.2)
    return synthetic_te_problem(n_clusters, n_services, n_classes,
                                seed=seed, **kwargs)
