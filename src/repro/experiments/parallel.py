"""Parallel sweep execution: scenario × policy × seed fan-out.

Every figure, ablation, and robustness result is a *sweep* — a grid of
independent (scenario, policy, seed) simulation runs. The seed harness ran
them strictly serially; this module fans the work units out over a
``concurrent.futures.ProcessPoolExecutor`` while keeping the results
**byte-identical** to the serial order:

* each unit carries its own seed, so runs are pure functions of their
  inputs regardless of which process executes them (worker processes build
  their own :class:`~repro.sim.rng.RngRegistry` from that seed — no
  randomness is constructed in this module, satisfying lint rule D01);
* results are returned in deterministic submission order, never completion
  order;
* ``workers=1`` (and pickling-hostile work) falls back to plain in-process
  execution with exactly the serial code path.

Worker count resolution: explicit argument > ``REPRO_WORKERS`` environment
variable > ``os.cpu_count()``.

Wall-clock timing in this module is diagnostic only (executor overhead
reporting for BENCH_sweep.json); it never feeds back into simulated time.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..analysis.compare import Comparison, PolicyOutcome
from ..baselines.base import RoutingPolicy
from .harness import Scenario, run_policy

__all__ = ["SweepExecutor", "SweepUnit", "WORKERS_ENV", "resolve_workers",
           "run_unit"]

#: environment override for the default worker count
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    ``None`` consults ``REPRO_WORKERS``, then ``os.cpu_count()``. The
    result is always >= 1; a non-integer or non-positive override raises.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None and raw.strip():
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class SweepUnit:
    """One independent run of a sweep: a scenario under a policy at a seed.

    ``seed=None`` uses the scenario's own seed. ``label`` groups units when
    regrouping flat results back into per-scenario comparisons.
    """

    scenario: Scenario
    policy: RoutingPolicy
    seed: int | None = None
    label: str = ""


def run_unit(unit: SweepUnit) -> PolicyOutcome:
    """Execute one sweep unit (module-level so it pickles to workers)."""
    return run_policy(unit.scenario, unit.policy, seed=unit.seed)


def _is_picklable(payload: Any) -> bool:
    try:
        pickle.dumps(payload)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    return True


class SweepExecutor:
    """Deterministic-order process-pool executor for sweep work units.

    >>> executor = SweepExecutor(workers=1)   # serial fallback
    >>> executor.map(len, [(1, 2), (3,)])
    [2, 1]

    With ``workers > 1``, picklable units run in a process pool; results
    come back in submission order, so output is byte-identical to a serial
    run of the same units. Units (or functions) that cannot be pickled are
    executed in-process, still at their submission position. A worker
    exception propagates to the caller with its original type — the pool
    is shut down, never left hanging.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        #: wall-clock seconds of the last map() call — diagnostic only,
        #: exported to BENCH_sweep.json, never simulation input
        self.last_elapsed: float | None = None

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list:
        """Apply ``fn`` to every item, returning results in item order."""
        items = list(items)
        started = time.perf_counter()   # diagnostic wall-time only
        try:
            if self.workers <= 1 or len(items) <= 1:
                return [fn(item) for item in items]
            if not _is_picklable(fn):
                return [fn(item) for item in items]
            return self._map_parallel(fn, items)
        finally:
            self.last_elapsed = (
                time.perf_counter() - started)

    def run_units(self, units: Sequence[SweepUnit]) -> list[PolicyOutcome]:
        """Run sweep units, preserving submission order."""
        return self.map(run_unit, units)

    def compare(self, scenario: Scenario,
                policies: Sequence[RoutingPolicy]) -> Comparison:
        """Parallel equivalent of :func:`compare_policies`."""
        outcomes = self.run_units(
            [SweepUnit(scenario, policy) for policy in policies])
        comparison = Comparison(scenario.name)
        for outcome in outcomes:
            comparison.add(outcome)
        return comparison

    # ------------------------------------------------------------ internal

    def _map_parallel(self, fn: Callable[[Any], Any], items: list) -> list:
        max_workers = min(self.workers, len(items))
        results: list[Any] = [None] * len(items)
        inline: list[int] = []
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures: list[tuple[int, Future]] = []
            for index, item in enumerate(items):
                if _is_picklable(item):
                    futures.append((index, pool.submit(fn, item)))
                else:
                    # pickling-hostile unit: run in-process, but only after
                    # parallel submission so workers start immediately
                    inline.append(index)
            for index in inline:
                results[index] = fn(items[index])
            for index, future in futures:
                # .result() re-raises the worker's original exception; the
                # enclosing `with` then shuts the pool down (no hang)
                results[index] = future.result()
        return results

    def __repr__(self) -> str:
        return f"SweepExecutor(workers={self.workers})"
