"""Experiment scenarios and harness reproducing the paper's evaluation."""

from .harness import Scenario, compare_policies, predict_policy, run_policy
from .parallel import SweepExecutor, SweepUnit, resolve_workers, run_unit
from .scenarios import (FigureSetup, fig3_threshold_scenario,
                        fig4_offload_threshold_problem, fig6a_how_much,
                        fig6b_which_cluster, fig6c_multihop,
                        fig6d_traffic_classes,
                        waterfall_with_absolute_threshold)

__all__ = [
    "Scenario", "compare_policies", "predict_policy", "run_policy",
    "SweepExecutor", "SweepUnit", "resolve_workers", "run_unit",
    "FigureSetup", "fig3_threshold_scenario",
    "fig4_offload_threshold_problem", "fig6a_how_much",
    "fig6b_which_cluster", "fig6c_multihop", "fig6d_traffic_classes",
    "waterfall_with_absolute_threshold",
]
