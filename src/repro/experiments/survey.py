"""The paper's Istio-community operator survey (§2), as structured data.

The paper motivates SLATE with a survey of multi-cluster deployment
patterns ("Surveying Cluster Operators", §2; full results in reference
[8]). This module encodes every statistic the paper reports so the
motivation section is reproducible alongside the evaluation, and renders
them as a table (also exposed via ``python -m repro survey``).

Numbers are quoted verbatim from §2 and its footnotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_table

__all__ = ["SurveyStat", "SURVEY", "survey_table", "RESPONDENTS"]

#: total responses; four were excluded (no multi-cluster, < 10 nodes)
RESPONDENTS = 31
USABLE_RESPONDENTS = 27


@dataclass(frozen=True)
class SurveyStat:
    """One reported statistic."""

    topic: str
    value: str
    detail: str


SURVEY: tuple[SurveyStat, ...] = (
    SurveyStat("production clusters (median)", "10-19",
               "respondents ran a median of ten to nineteen clusters"),
    SurveyStat("scale range", "2 to 50+ clusters",
               "from a few nodes to thousands of nodes"),
    SurveyStat("deploy multi-cluster services", "53%",
               "at least one service deployed in multiple clusters"),
    SurveyStat("services that are multi-cluster", "48%",
               "share of deployed services, among those respondents"),
    SurveyStat("load imbalance for hours or longer", "50%",
               "among multi-cluster service responses"),
    SurveyStat("load imbalance for seconds or minutes", "20%",
               "among multi-cluster service responses"),
    SurveyStat("use cross-cluster routing", "81%",
               "reasons: load balancing, latency, missing services, "
               "data locality"),
    SurveyStat("rely only on simple policies", "100%",
               "round robin / least response time / consistent hashing / "
               "static distribution / locality failover"),
    SurveyStat("directly optimize latency or cost", "0%",
               "no respondent claims to"),
    SurveyStat("use any global load balancing system", "0%",
               "no respondent claims to"),
    SurveyStat("would find cross-cluster optimization useful", "90%",
               "the paper's headline motivation number"),
    SurveyStat("... to optimize request latency", "67%", "of respondents"),
    SurveyStat("... to reduce bandwidth costs", "62%", "of respondents"),
    SurveyStat("... to react to load bursts", "48%", "of respondents"),
    SurveyStat("... to optimize compute costs", "33%", "of respondents"),
)


def survey_table() -> str:
    """Render the §2 survey statistics as an aligned table."""
    rows = [[stat.topic, stat.value, stat.detail] for stat in SURVEY]
    return format_table(
        ["statistic", "value", "note"], rows,
        title=f"Istio-community operator survey (§2; n={RESPONDENTS}, "
              f"{USABLE_RESPONDENTS} usable)")
