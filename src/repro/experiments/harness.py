"""Experiment harness: run a scenario under each policy, collect outcomes.

One :class:`Scenario` bundles everything a paper experiment fixes (app,
deployment, demand, run length); :func:`run_policy` executes it under one
routing policy in the simulator, and :func:`compare_policies` produces the
:class:`~repro.analysis.compare.Comparison` behind each figure.

Control-plane fidelity: rules flow through per-cluster
:class:`~repro.core.controller.ClusterController` objects (each installs
only its own cluster's rules), and adaptive policies receive epoch telemetry
relayed the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.compare import Comparison, PolicyOutcome
from ..analysis.fluid import FluidPrediction, evaluate_rules
from ..baselines.base import PolicyContext, RoutingPolicy
from ..core.classes.classifier import AppSpecClassifier
from ..core.controller.cluster_controller import ClusterController
from ..devtools.invariants import InvariantViolation
from ..sim.apps import AppSpec
from ..sim.runner import MeshSimulation
from ..sim.topology import DeploymentSpec
from ..sim.workload import DemandMatrix

__all__ = ["Scenario", "run_policy", "compare_policies", "predict_policy"]


@dataclass
class Scenario:
    """A fully specified experiment."""

    name: str
    app: AppSpec
    deployment: DeploymentSpec
    demand: DemandMatrix
    duration: float = 30.0
    warmup: float = 5.0
    seed: int = 42
    #: re-plan period for adaptive policies; None = static rules only
    epoch: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must be in [0, duration)")

    def context(self) -> PolicyContext:
        return PolicyContext(self.app, self.deployment, self.demand)

    def with_demand(self, demand: DemandMatrix) -> "Scenario":
        return replace(self, demand=demand)


def run_policy(scenario: Scenario, policy: RoutingPolicy,
               seed: int | None = None,
               classifier: AppSpecClassifier | None = None,
               observability=None,
               timeline=None,
               fidelity: str = "event",
               sample_rate: float | None = None,
               fluid_tick: float | None = None) -> PolicyOutcome:
    """Simulate one scenario under one policy.

    ``classifier`` lets sweep callers build the (stateless)
    :class:`AppSpecClassifier` once per scenario instead of once per run —
    see :func:`compare_policies`, which reuses it across policies.

    ``observability`` accepts an
    :class:`~repro.obs.config.ObservabilityConfig` (or a prebuilt
    :class:`~repro.obs.config.Observability`): traces/metrics/decision-log/
    profiling for the run, all off by default. ``timeline`` (a
    :class:`~repro.sim.traces.DemandTimeline`) replaces the scenario's
    constant demand matrix with time-varying sources — the controller
    dynamics the decision log exists to show.

    ``fidelity`` selects how demand is realised: ``"event"`` (per-request
    simulation, the default), ``"fluid"`` (bulk flow rates only — scales
    to millions of simulated RPS but yields no per-request latencies), or
    ``"hybrid"`` (bulk flow plus a ``sample_rate`` slice of real requests
    whose latencies populate the outcome). ``sample_rate`` and
    ``fluid_tick`` override the simulator defaults when given.
    """
    from ..obs.config import Observability
    obs = Observability.coerce(observability)
    fidelity_kwargs = {}
    if fidelity != "event":
        fidelity_kwargs["fidelity"] = fidelity
        if sample_rate is not None:
            fidelity_kwargs["sample_rate"] = sample_rate
        if fluid_tick is not None:
            fidelity_kwargs["fluid_tick"] = fluid_tick
    simulation = MeshSimulation(
        scenario.app, scenario.deployment,
        seed=scenario.seed if seed is None else seed,
        classifier=classifier or AppSpecClassifier(scenario.app),
        observability=obs,
        **fidelity_kwargs,
    )
    obs = simulation.observability   # post-coercion runtime (or None)
    profiler = obs.profiler if obs is not None else None
    decision_log = obs.decisions if obs is not None else None
    provenance = obs.provenance if obs is not None else None
    ctx = scenario.context()
    controllers = {name: ClusterController(name)
                   for name in scenario.deployment.cluster_names}

    # route optimizer build/solve timings into the profiler (policies that
    # don't expose the hook — baselines — simply aren't profiled per-phase)
    if profiler is not None and hasattr(policy, "attach_profiler"):
        policy.attach_profiler(profiler)
    if provenance is not None:
        provenance.bind_run(scenario.name,
                            scenario.seed if seed is None else seed,
                            policy=policy.name)
        if hasattr(policy, "attach_provenance"):
            policy.attach_provenance(provenance)

    if profiler is not None:
        with profiler.section("initial-plan"):
            rules = policy.compute_rules(ctx)
    else:
        rules = policy.compute_rules(ctx)
    for controller in controllers.values():
        controller.distribute(rules, simulation.table)
    if provenance is not None:
        provenance.seed_rules(simulation.table.rules())

    def epoch_body(reports, sim) -> None:
        relayed = []
        for report in reports:
            controller = controllers[report.cluster]
            controller.ingest(report)
            relayed.extend(controller.relay())
        update = policy.on_epoch(relayed, ctx)
        now = sim.sim.now
        for controller in controllers.values():
            # healthy run: every epoch is a successful GC contact, so the
            # (optional) staleness guard shares one audit trail with chaos
            controller.touch(now)
        if update is not None:
            for controller in controllers.values():
                controller.distribute(update, sim.table, now=now)
        if decision_log is not None:
            global_controller = getattr(policy, "controller", None)
            if global_controller is not None:
                decision_log.record(sim.sim.now, global_controller, update)
        if provenance is not None:
            provenance.record_epoch(
                now, controller=getattr(policy, "controller", None),
                update=update, reports=relayed, rules=sim.table.rules())
            if obs.alerts is not None:
                provenance.check_alerts(now, obs.alerts)
            if obs.anomaly is not None:
                provenance.check_anomalies(now, obs.anomaly.log)
            if obs.breach is not None:
                provenance.check_predictions(now, obs.breach)

    def on_epoch(reports, sim) -> None:
        if profiler is not None:
            with profiler.section("epoch"):
                epoch_body(reports, sim)
        else:
            epoch_body(reports, sim)

    try:
        if timeline is not None:
            simulation.run_timeline(
                timeline, epoch=scenario.epoch,
                on_epoch=on_epoch if scenario.epoch else None)
        else:
            simulation.run(scenario.demand, scenario.duration,
                           epoch=scenario.epoch,
                           on_epoch=on_epoch if scenario.epoch else None)
    except InvariantViolation as error:
        # a runtime-invariant failure is an anomaly trigger: freeze the
        # flight recorder before the exception unwinds the run
        if provenance is not None:
            provenance.record_anomaly(simulation.sim.now, "invariant",
                                      {"error": str(error)})
        raise

    if provenance is not None:
        provenance.finalize(simulation.sim.now)
    if obs is not None:
        obs.collect(simulation, getattr(policy, "controller", None))

    return PolicyOutcome(
        policy=policy.name,
        latencies=simulation.telemetry.latencies(after=scenario.warmup),
        egress_bytes=simulation.network.ledger.total_bytes,
        egress_cost=simulation.network.ledger.total_cost,
        latencies_by_class=simulation.telemetry.latencies_by_class(
            after=scenario.warmup),
    )


def compare_policies(scenario: Scenario,
                     policies: list[RoutingPolicy],
                     executor=None) -> Comparison:
    """Run every policy on the scenario with identical seeds.

    ``executor`` (a :class:`~repro.experiments.parallel.SweepExecutor`)
    fans the per-policy runs out over worker processes; outcomes are
    byte-identical to the serial path because each run is a pure function
    of (scenario, policy, seed) and results keep submission order.
    """
    if executor is not None and executor.workers > 1:
        return executor.compare(scenario, policies)
    comparison = Comparison(scenario.name)
    classifier = AppSpecClassifier(scenario.app)
    for policy in policies:
        comparison.add(run_policy(scenario, policy, classifier=classifier))
    return comparison


def predict_policy(scenario: Scenario,
                   policy: RoutingPolicy) -> FluidPrediction:
    """Analytic (fluid-model) evaluation — no simulation."""
    rules = policy.compute_rules(scenario.context())
    return evaluate_rules(scenario.app, scenario.deployment,
                          scenario.demand, rules)
