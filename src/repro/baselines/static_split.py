"""Istio locality *weighted distribution* ([13] in the paper).

Operators statically pin the fraction of traffic each source cluster sends
to each destination — "static load distribution" in the survey (§2). The
weights never react to load; the policy simply stamps the configured split
onto every service (or a per-service override).
"""

from __future__ import annotations

from ..core.rules import RoutingRule, RuleSet
from ..mesh.routing_table import WILDCARD_CLASS
from ..mesh.telemetry import ClusterEpochReport
from .base import PolicyContext

__all__ = ["StaticSplitPolicy"]


class StaticSplitPolicy:
    """Operator-configured static weights per source cluster."""

    name = "static-split"

    def __init__(self, splits: dict[str, dict[str, float]],
                 per_service: dict[str, dict[str, dict[str, float]]] | None = None) -> None:
        """``splits[src][dst] = weight``; optional per-service overrides
        ``per_service[service][src][dst]``."""
        self._splits = splits
        self._per_service = per_service or {}

    def compute_rules(self, ctx: PolicyContext) -> RuleSet:
        rules = RuleSet()
        for service in ctx.app.services():
            deployed = set(ctx.deployment.clusters_with(service))
            config = self._per_service.get(service, self._splits)
            for src, weights in config.items():
                usable = {dst: w for dst, w in weights.items()
                          if dst in deployed and w > 0}
                if not usable:
                    continue
                rules.add(RoutingRule.make(service, WILDCARD_CLASS, src,
                                           usable))
        return rules

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        return None
