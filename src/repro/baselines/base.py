"""Common interface for routing policies (SLATE and baselines alike).

A policy turns a view of the system — application structure, deployment,
and (estimated) demand — into a :class:`~repro.core.rules.RuleSet`. Static
policies compute rules once; adaptive ones may also react to epoch
telemetry through ``on_epoch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..core.rules import RuleSet
from ..mesh.telemetry import ClusterEpochReport
from ..sim.apps import AppSpec
from ..sim.topology import DeploymentSpec
from ..sim.workload import DemandMatrix

__all__ = ["PolicyContext", "RoutingPolicy"]


@dataclass
class PolicyContext:
    """What a policy may look at when computing rules."""

    app: AppSpec
    deployment: DeploymentSpec
    demand: DemandMatrix

    def nearest_clusters(self, src: str, candidates: list[str]) -> list[str]:
        """Candidates ordered by proximity to ``src`` (self first if present)."""
        return sorted(candidates,
                      key=lambda c: (self.deployment.latency.one_way(src, c), c))


@runtime_checkable
class RoutingPolicy(Protocol):
    """Anything that can produce routing rules for a deployment."""

    name: str

    def compute_rules(self, ctx: PolicyContext) -> RuleSet: ...

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        """Optional adaptivity hook; return new rules or ``None``."""
        ...
