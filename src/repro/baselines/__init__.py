"""Baseline routing policies the paper compares against (§4)."""

from .base import PolicyContext, RoutingPolicy
from .local_only import LocalOnlyPolicy
from .locality import LocalityFailoverPolicy
from .static_split import StaticSplitPolicy
from .waterfall import (WaterfallConfig, WaterfallPolicy, cascade_loads,
                        waterfall_split)

__all__ = [
    "PolicyContext", "RoutingPolicy",
    "LocalOnlyPolicy",
    "LocalityFailoverPolicy",
    "StaticSplitPolicy",
    "WaterfallConfig", "WaterfallPolicy", "cascade_loads", "waterfall_split",
]
