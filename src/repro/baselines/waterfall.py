"""The Waterfall algorithm: capacity-based global load balancing (§4).

This is the paper's state-of-the-art baseline, modelling Google Traffic
Director and Meta ServiceRouter: "each service has a predefined capacity,
which is in terms of requests (of any type) per second ... Requests beyond
this capacity are greedily offloaded to the nearest region with available
capacity."

Key properties reproduced faithfully:

* **static thresholds** — capacity is configured, not derived from live
  latency (Fig. 3's conservative/aggressive pathology);
* **greedy nearest-first spill** — each overloaded cluster fills the closest
  spare capacity first, with no global matching (§4.2);
* **single-hop** — the split at a service depends only on that service's
  replica pools; load arriving at children is whatever falls out (§4.3);
* **class-blind** — requests are interchangeable; every class at a source
  cluster gets the same split (§4.4, wildcard-class rules).

Offered load at non-root services is derived by cascading the ingress demand
down the union call graph in topological order — the steady state the
runtime converges to.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.rules import RoutingRule, RuleSet
from ..mesh.routing_table import WILDCARD_CLASS
from ..mesh.telemetry import ClusterEpochReport
from ..sim.apps import AppSpec
from ..sim.topology import DeploymentSpec
from ..sim.workload import DemandMatrix
from .base import PolicyContext

__all__ = ["WaterfallConfig", "WaterfallPolicy", "waterfall_split",
           "cascade_loads"]


@dataclass
class WaterfallConfig:
    """Static per-(service, cluster) capacity thresholds, requests/second."""

    capacities: dict[tuple[str, str], float]

    def __post_init__(self) -> None:
        for key, cap in self.capacities.items():
            if cap < 0:
                raise ValueError(f"negative capacity for {key}: {cap}")

    def capacity(self, service: str, cluster: str) -> float:
        return self.capacities.get((service, cluster), 0.0)

    @staticmethod
    def from_deployment(app: AppSpec, deployment: DeploymentSpec,
                        threshold_rho: float = 0.8) -> "WaterfallConfig":
        """Derive thresholds the way operators do: utilization targets.

        capacity = threshold_rho × replicas / mean service time, where the
        mean is across the classes touching the service — the "requests of
        any type per second" configuration the paper describes.
        """
        if not 0 < threshold_rho <= 1:
            raise ValueError(
                f"threshold_rho must be in (0, 1], got {threshold_rho}")
        mean_st: dict[str, float] = {}
        for service in app.services():
            times = [spec.exec_time_of(service)
                     for spec in app.classes.values()
                     if service in spec.services()]
            positive = [t for t in times if t > 0]
            mean_st[service] = (sum(positive) / len(positive)
                                if positive else 0.0)
        capacities = {}
        for cluster in deployment.clusters:
            for service, replicas in cluster.replicas.items():
                if replicas <= 0:
                    continue
                st = mean_st.get(service, 0.0)
                capacities[(service, cluster.name)] = (
                    threshold_rho * replicas / st if st > 0 else float("inf"))
        return WaterfallConfig(capacities)


def waterfall_split(loads: dict[str, float],
                    capacities: dict[str, float],
                    deployed: list[str],
                    proximity: dict[str, list[str]],
                    coordinated: bool = False,
                    ) -> dict[str, dict[str, float]]:
    """Greedy capacity-based split for one service.

    ``loads[src]`` is offered RPS originating at each cluster;
    ``capacities[c]`` the static threshold at each deployed cluster;
    ``proximity[src]`` every deployed cluster ordered nearest-first.
    Returns ``split[src][dst]`` fractions summing to 1 per loaded source.

    With ``coordinated=False`` (the default, matching the paper's §4.2
    observation) each overloaded source judges remote spare capacity
    *independently* — spare = capacity − that cluster's own offered load —
    so two overloaded clusters both dump on the same nearest neighbour.
    ``coordinated=True`` is the idealised variant where spills consume a
    shared spare-capacity pool (used by ablations).

    Excess that finds no spare stays local when possible, else goes to the
    nearest deployed cluster — the locality-failover behaviour built into
    these systems.
    """
    if not deployed:
        raise ValueError("service deployed nowhere")
    assigned: dict[str, dict[str, float]] = {
        src: {} for src, load in loads.items() if load > 0}
    shared_spare = {c: max(0.0, capacities.get(c, 0.0) - loads.get(c, 0.0))
                    for c in deployed}
    excess: dict[str, float] = {}
    for src, load in loads.items():
        if load <= 0:
            continue
        if src in deployed:
            local_keep = min(load, capacities.get(src, 0.0))
            if local_keep > 0:
                assigned[src][src] = local_keep
            excess[src] = load - local_keep
        else:
            excess[src] = load

    for src in sorted(excess, key=lambda s: (-excess[s], s)):
        remaining = excess[src]
        if remaining <= 0:
            continue
        spare = (shared_spare if coordinated
                 else {c: max(0.0, capacities.get(c, 0.0) - loads.get(c, 0.0))
                       for c in deployed})
        for dst in proximity[src]:
            if dst == src or remaining <= 0:
                continue
            take = min(remaining, spare.get(dst, 0.0))
            if take > 0:
                assigned[src][dst] = assigned[src].get(dst, 0.0) + take
                spare[dst] -= take
                remaining -= take
        if remaining > 0:
            # nowhere has spare capacity: overload locally if possible,
            # else dump on the nearest deployed cluster
            sink = src if src in deployed else proximity[src][0]
            assigned[src][sink] = assigned[src].get(sink, 0.0) + remaining

    split: dict[str, dict[str, float]] = {}
    for src, flows in assigned.items():
        total = sum(flows.values())
        split[src] = {dst: flow / total for dst, flow in flows.items()}
    return split


def _union_call_graph(app: AppSpec) -> nx.DiGraph:
    graph = nx.DiGraph()
    for spec in app.classes.values():
        graph.add_node(spec.root_service)
        for edge in spec.edges:
            graph.add_edge(edge.caller, edge.callee)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError(
            f"app {app.name!r}: union call graph has a cycle; waterfall "
            "cascade requires a DAG")
    return graph


def cascade_loads(app: AppSpec, deployment: DeploymentSpec,
                  demand: DemandMatrix, config: WaterfallConfig,
                  coordinated: bool = False,
                  ) -> tuple[dict[str, dict[str, dict[str, float]]],
                             dict[str, dict[str, float]]]:
    """Propagate ingress demand down the call graph under waterfall splits.

    Returns ``(split, offered)``: per-service source→destination split
    fractions, and the per-service per-cluster offered load (RPS) that
    produced them.
    """
    graph = _union_call_graph(app)
    order = list(nx.topological_sort(graph))
    clusters = deployment.cluster_names

    # per-class offered load at each service/cluster
    offered: dict[tuple[str, str], dict[str, float]] = {}
    for name, spec in app.classes.items():
        root = spec.root_service
        arriving = offered.setdefault((name, root), {})
        for cluster in clusters:
            rps = demand.rps(name, cluster)
            if rps > 0:
                arriving[cluster] = arriving.get(cluster, 0.0) + rps

    split: dict[str, dict[str, dict[str, float]]] = {}
    total_offered: dict[str, dict[str, float]] = {}
    for service in order:
        deployed = deployment.clusters_with(service)
        if not deployed:
            raise ValueError(f"service {service!r} deployed nowhere")
        loads = {c: 0.0 for c in clusters}
        for name in app.classes:
            for cluster, rps in offered.get((name, service), {}).items():
                loads[cluster] += rps
        total_offered[service] = dict(loads)
        proximity = {
            src: sorted(deployed,
                        key=lambda c: (deployment.latency.one_way(src, c), c))
            for src in clusters
        }
        capacities = {c: config.capacity(service, c) for c in deployed}
        service_split = waterfall_split(loads, capacities, deployed,
                                        proximity,
                                        coordinated=coordinated)
        # sources with no load still need a defined rule for the runtime
        for src in clusters:
            if src not in service_split:
                target = src if src in deployed else proximity[src][0]
                service_split[src] = {target: 1.0}
        split[service] = service_split

        # executions land where the split sends them; children inherit
        for name, spec in app.classes.items():
            arriving = offered.get((name, service), {})
            if not arriving:
                continue
            executions: dict[str, float] = {}
            for src, rps in arriving.items():
                for dst, fraction in service_split[src].items():
                    executions[dst] = executions.get(dst, 0.0) + rps * fraction
            for edge in spec.children_map().get(service, []):
                child = offered.setdefault((name, edge.callee), {})
                for dst, rate in executions.items():
                    child[dst] = (child.get(dst, 0.0)
                                  + rate * edge.calls_per_request)
    return split, total_offered


class WaterfallPolicy:
    """Traffic Director / ServiceRouter-style routing policy."""

    name = "waterfall"

    def __init__(self, config: WaterfallConfig, adaptive: bool = False,
                 coordinated: bool = False) -> None:
        self.config = config
        self.adaptive = adaptive
        self.coordinated = coordinated

    def compute_rules(self, ctx: PolicyContext) -> RuleSet:
        split, _ = cascade_loads(ctx.app, ctx.deployment, ctx.demand,
                                 self.config, coordinated=self.coordinated)
        rules = RuleSet()
        for service in sorted(split):
            for src in sorted(split[service]):
                rules.add(RoutingRule.make(service, WILDCARD_CLASS, src,
                                           split[service][src]))
        return rules

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        """Adaptive mode: recompute the cascade from observed ingress."""
        if not self.adaptive:
            return None
        observed = DemandMatrix()
        for report in reports:
            for cls in ctx.app.classes:
                rps = report.ingress_rps(cls)
                if rps > 0:
                    observed.set(cls, report.cluster, rps)
        if observed.total_rps() <= 0:
            return None
        refreshed = PolicyContext(ctx.app, ctx.deployment, observed)
        return self.compute_rules(refreshed)
