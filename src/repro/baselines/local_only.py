"""Always-local routing: the default the paper starts from (§1).

"The default option is to use a local replica, in the same cluster where the
request arrives." Emits explicit local rules for every deployed (service,
source cluster) pair; sources without a local replica get no rule, and the
proxy's built-in failover handles them (so partial replication doesn't
black-hole traffic).
"""

from __future__ import annotations

from ..core.rules import RoutingRule, RuleSet
from ..mesh.routing_table import WILDCARD_CLASS
from ..mesh.telemetry import ClusterEpochReport
from .base import PolicyContext

__all__ = ["LocalOnlyPolicy"]


class LocalOnlyPolicy:
    """Serve everything in the cluster where it arrives."""

    name = "local-only"

    def compute_rules(self, ctx: PolicyContext) -> RuleSet:
        rules = RuleSet()
        for service in ctx.app.services():
            deployed = ctx.deployment.clusters_with(service)
            for src in ctx.deployment.cluster_names:
                if src in deployed:
                    rules.add(RoutingRule.make(service, WILDCARD_CLASS, src,
                                               {src: 1.0}))
        return rules

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        return None
