"""Istio locality-failover load balancing (§2, [12] in the paper).

Requests are served locally when the service has a healthy local replica and
fail over to the *nearest* cluster that runs the service otherwise. This is
what the paper's survey found in production and what it uses as the
comparison point in the multi-hop experiment (§4.3): the failover happens at
the hop where the service is missing, with no regard for where in the call
tree the cut is cheapest.
"""

from __future__ import annotations

from ..core.rules import RoutingRule, RuleSet
from ..mesh.routing_table import WILDCARD_CLASS
from ..mesh.telemetry import ClusterEpochReport
from .base import PolicyContext

__all__ = ["LocalityFailoverPolicy"]


class LocalityFailoverPolicy:
    """Local first; otherwise nearest cluster running the service."""

    name = "locality-failover"

    def compute_rules(self, ctx: PolicyContext) -> RuleSet:
        rules = RuleSet()
        for service in ctx.app.services():
            deployed = ctx.deployment.clusters_with(service)
            if not deployed:
                continue
            for src in ctx.deployment.cluster_names:
                target = (src if src in deployed
                          else ctx.nearest_clusters(src, deployed)[0])
                rules.add(RoutingRule.make(service, WILDCARD_CLASS, src,
                                           {target: 1.0}))
        return rules

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        return None
