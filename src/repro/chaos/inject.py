"""Fault-plan compiler: schedules inject/recover callbacks on the engine.

:class:`ChaosRuntime` binds a :class:`~repro.chaos.plan.FaultPlan` to one
:class:`~repro.sim.runner.MeshSimulation`:

* WAN and replica faults become pairs of engine events at ``start`` and
  ``start + duration`` — inject applies a scoped
  :class:`~repro.sim.network.LatencyOverride` / pool degradation, recover
  restores exactly what was applied (overrides nest, so overlapping
  faults compose).
* Telemetry faults and control-plane outages act at epoch boundaries:
  the chaos-aware harness calls :meth:`gate_reports` and
  :meth:`controller_available` from its epoch hook.

Every fault also yields a :class:`FaultRecord` on the runtime's
``timeline``. Records expose the same ``overlaps(time)`` interface as
:class:`~repro.obs.alerts.Alert`, so
:func:`~repro.obs.alerts.join_alerts_decisions` joins the fault timeline
against the Global Controller decision log unchanged — "which re-plans
happened while fault X was active".

An empty plan compiles to nothing: no events, no RNG streams, no state —
a chaos-armed run with no faults is byte-identical to a run without
chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.runner import MeshSimulation
from .plan import (ControlPlaneOutage, FaultPlan, ReplicaFault,
                   TelemetryFault, WanFault)

__all__ = ["ChaosRuntime", "FaultRecord"]


@dataclass
class FaultRecord:
    """One fault's lifecycle on the run's timeline (alert-shaped)."""

    index: int
    kind: str
    label: str
    fired_at: float
    resolved_at: float
    #: replicas actually removed by a crash (what recovery added back)
    crashed: int = 0
    fault: object = field(default=None, repr=False)
    #: the LatencyOverride applied on inject (WAN faults only)
    _token: object = field(default=None, repr=False)

    def overlaps(self, time: float) -> bool:
        """True when ``time`` falls inside the fault's active window."""
        return self.fired_at <= time <= self.resolved_at

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "crashed": self.crashed,
        }


class ChaosRuntime:
    """A fault plan compiled onto one simulation.

    Construct *before* :meth:`MeshSimulation.run` — :meth:`install` (called
    by the constructor) schedules the inject/recover events; the epoch loop
    then consults :meth:`gate_reports` / :meth:`controller_available`.
    """

    def __init__(self, simulation: MeshSimulation, plan: FaultPlan) -> None:
        self.simulation = simulation
        self.plan = plan
        self.timeline: list[FaultRecord] = []
        #: telemetry reports held back by a delay fault: (release, seq, report)
        self._delayed: list[tuple[float, int, object]] = []
        self._delayed_seq = 0
        self.reports_dropped = 0
        self.reports_delayed = 0
        self._validate()
        self._install()

    # ------------------------------------------------------------- compile

    def _validate(self) -> None:
        deployment = self.simulation.deployment
        clusters = set(deployment.cluster_names)
        for fault in self.plan:
            if isinstance(fault, WanFault):
                for name in (fault.src, fault.dst):
                    if name not in clusters:
                        raise ValueError(
                            f"{fault.label}: unknown cluster {name!r}")
            elif isinstance(fault, ReplicaFault):
                if fault.cluster not in clusters:
                    raise ValueError(
                        f"{fault.label}: unknown cluster {fault.cluster!r}")
                if fault.service not in self.simulation.app.services():
                    raise ValueError(
                        f"{fault.label}: unknown service {fault.service!r}")
            elif isinstance(fault, TelemetryFault):
                if fault.cluster not in clusters:
                    raise ValueError(
                        f"{fault.label}: unknown cluster {fault.cluster!r}")

    def _install(self) -> None:
        sim = self.simulation.sim
        for index, fault in enumerate(self.plan):
            end = fault.start + fault.duration
            kind = type(fault).__name__
            record = FaultRecord(index=index, kind=kind, label=fault.label,
                                 fired_at=fault.start, resolved_at=end,
                                 fault=fault)
            self.timeline.append(record)
            if isinstance(fault, WanFault):
                sim.schedule_at(fault.start, self._inject_wan, record)
                sim.schedule_at(end, self._recover_wan, record)
            elif isinstance(fault, ReplicaFault):
                sim.schedule_at(fault.start, self._inject_replica, record)
                sim.schedule_at(end, self._recover_replica, record)
            # telemetry faults and outages have no engine hook: they gate
            # the control loop at epoch boundaries via the chaos harness

    # ------------------------------------------------- WAN inject/recover

    def _inject_wan(self, record: FaultRecord) -> None:
        fault: WanFault = record.fault
        network = self.simulation.network
        token = network.latency.apply_override(
            fault.src, fault.dst, extra_delay=fault.extra_delay,
            multiplier=fault.multiplier, partition=fault.partition)
        record._token = token
        if fault.jitter > 0:
            a, b = sorted((fault.src, fault.dst))
            rng = self.simulation.rngs.stream(f"chaos/jitter/{a}:{b}")
            network.set_jitter(fault.src, fault.dst, fault.jitter, rng)

    def _recover_wan(self, record: FaultRecord) -> None:
        fault: WanFault = record.fault
        network = self.simulation.network
        network.latency.remove_override(record._token)
        if fault.jitter > 0:
            network.clear_jitter(fault.src, fault.dst)

    # --------------------------------------------- replica inject/recover

    def _inject_replica(self, record: FaultRecord) -> None:
        fault: ReplicaFault = record.fault
        cluster = self.simulation.clusters[fault.cluster]
        if fault.slowdown > 1.0:
            cluster.degrade(fault.service, fault.slowdown)
        if fault.crash > 0:
            died = cluster.crash_replicas(fault.service, fault.crash)
            record.crashed = died
            if died:
                # keep the deployment view honest so proxies and re-plans
                # see the reduced capacity (mirrors fail_service)
                spec = self.simulation.deployment.cluster(fault.cluster)
                spec.replicas[fault.service] -= died

    def _recover_replica(self, record: FaultRecord) -> None:
        fault: ReplicaFault = record.fault
        cluster = self.simulation.clusters[fault.cluster]
        if fault.slowdown > 1.0:
            cluster.degrade(fault.service, 1.0)
        if record.crashed:
            pool = cluster.pool(fault.service)
            pool.resize(pool.replicas + record.crashed)
            spec = self.simulation.deployment.cluster(fault.cluster)
            spec.replicas[fault.service] += record.crashed

    # -------------------------------------------------- control-plane gates

    def controller_available(self, now: float) -> bool:
        """False while a :class:`ControlPlaneOutage` covers ``now``.

        Windows are half-open ``[start, start + duration)`` so an epoch
        landing exactly at the outage's end already sees the controller.
        """
        for fault in self.plan:
            if (isinstance(fault, ControlPlaneOutage)
                    and fault.start <= now < fault.start + fault.duration):
                return False
        return True

    def gate_reports(self, now: float, reports: list) -> list:
        """Apply telemetry faults to this epoch's harvested reports.

        Reports from a cluster under a *drop* fault are discarded; under a
        *delay* fault they are buffered and re-released (oldest first) at
        the first epoch boundary ``>= now + delay``. Everything else
        passes through untouched, in arrival order.
        """
        ready: list = []
        held = self._delayed
        if held:
            still_held = []
            released = []
            for release, seq, report in held:
                if release <= now:
                    released.append((release, seq, report))
                else:
                    still_held.append((release, seq, report))
            released.sort(key=lambda item: (item[0], item[1]))
            ready.extend(report for _, _, report in released)
            self._delayed = still_held
        for report in reports:
            fault = self._telemetry_fault(report.cluster, now)
            if fault is None:
                ready.append(report)
            elif fault.mode == "drop":
                self.reports_dropped += 1
            else:
                self.reports_delayed += 1
                self._delayed.append((now + fault.delay, self._delayed_seq,
                                      report))
                self._delayed_seq += 1
        return ready

    def _telemetry_fault(self, cluster: str, now: float):
        for fault in self.plan:
            if (isinstance(fault, TelemetryFault)
                    and fault.cluster == cluster
                    and fault.start <= now < fault.start + fault.duration):
                return fault
        return None

    # -------------------------------------------------------------- queries

    def counters(self) -> dict[str, int]:
        return {
            "faults": len(self.plan),
            "reports_dropped": self.reports_dropped,
            "reports_delayed": self.reports_delayed,
            "pending_delayed": len(self._delayed),
            "dropped_transfers": self.simulation.network.dropped_transfers,
        }
