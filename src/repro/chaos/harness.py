"""Chaos-aware experiment harness: run a scenario under a fault campaign.

:func:`run_chaos` is the fault-injecting sibling of
:func:`~repro.experiments.harness.run_policy`. It runs the same epoch
control loop, but:

* a :class:`~repro.chaos.inject.ChaosRuntime` compiles the
  :class:`~repro.chaos.plan.FaultPlan` onto the simulation before it
  starts;
* epoch reports pass through the runtime's telemetry gate (drop/delay
  faults) before they reach the policy;
* the policy is only consulted while :meth:`controller_available` — a
  control-plane outage freezes whatever rules the clusters hold;
* Cluster Controllers can be armed with ``max_rule_age`` + a fallback
  policy, so the stale-rule guard trips during outages (§5) and
  reconciles when the controller returns.

With an empty plan and the guard disarmed every branch above is a no-op
and the run is byte-identical to :func:`run_policy` on the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.compare import PolicyOutcome
from ..baselines.locality import LocalityFailoverPolicy
from ..baselines.waterfall import WaterfallConfig, WaterfallPolicy
from ..core.classes.classifier import AppSpecClassifier
from ..core.controller.cluster_controller import ClusterController
from ..experiments.harness import Scenario
from ..sim.runner import MeshSimulation, TimeoutPolicy
from .inject import ChaosRuntime
from .plan import FaultPlan
from .report import ResilienceReport, compute_resilience

__all__ = ["ChaosRunResult", "run_chaos", "make_fallback"]


def make_fallback(kind, scenario: Scenario):
    """Resolve a fallback spec: None, "locality", "waterfall", or a policy."""
    if kind is None or not isinstance(kind, str):
        return kind
    if kind == "locality":
        return LocalityFailoverPolicy()
    if kind == "waterfall":
        config = WaterfallConfig.from_deployment(scenario.app,
                                                 scenario.deployment)
        return WaterfallPolicy(config)
    raise ValueError(f"unknown fallback {kind!r} "
                     f"(expected 'locality', 'waterfall', or a policy)")


@dataclass
class ChaosRunResult:
    """Everything a faulted run produced, ready for resilience scoring."""

    scenario: str
    policy: str
    outcome: PolicyOutcome
    #: (arrival_time, latency) pairs; latency None == failed request
    samples: list[tuple[float, float | None]] = field(repr=False,
                                                      default_factory=list)
    chaos: ChaosRuntime | None = None
    controllers: dict[str, ClusterController] = field(default_factory=dict)
    decisions: object = None
    egress_cost: float = 0.0
    #: requests still open at quiesce (e.g. blackholed by a partition)
    hung_requests: int = 0
    #: the run's AnomalyLog when ObservabilityConfig(anomaly=True)
    anomalies: object = None

    @property
    def fallback_trips(self) -> list[float]:
        """Sim times at which any cluster's stale-rule guard tripped."""
        return sorted(c.fallback_tripped_at for c in self.controllers.values()
                      if c.fallback_tripped_at is not None)

    def detection_signals(self) -> list[float]:
        """Control-plane reactions: guard trips + fresh re-plans."""
        signals = list(self.fallback_trips)
        if self.decisions is not None:
            signals.extend(d.sim_time for d in self.decisions
                           if d.outcome == "solved")
        return sorted(signals)

    def anomaly_signals(self) -> list[float]:
        """Anomaly-detector firings, ascending (empty when pillar off)."""
        if self.anomalies is None:
            return []
        return self.anomalies.times()

    def resilience(self, baseline: "ChaosRunResult", *, band: float = 1.5,
                   window: float = 2.0) -> ResilienceReport:
        """Score this run's fault timeline against an unfaulted twin."""
        timeline = self.chaos.timeline if self.chaos is not None else []
        return compute_resilience(
            timeline, self.samples, baseline.samples,
            self.detection_signals(), self.egress_cost,
            baseline.egress_cost, band=band, window=window,
            anomaly_signals=self.anomaly_signals())


def run_chaos(scenario: Scenario, policy, plan: FaultPlan | None = None,
              *, fallback=None, max_rule_age: float | None = None,
              seed: int | None = None, observability=None,
              timeline=None, timeouts: TimeoutPolicy | None = None,
              classifier: AppSpecClassifier | None = None) -> ChaosRunResult:
    """Simulate one scenario under one policy and one fault campaign.

    ``fallback`` is ``"locality"``, ``"waterfall"``, a policy object, or
    None; together with ``max_rule_age`` it arms every Cluster
    Controller's stale-rule guard. ``timeouts`` (a
    :class:`~repro.sim.runner.TimeoutPolicy`) gives requests a retry path
    when a partition blackholes their calls.
    """
    from ..obs.config import Observability
    plan = plan if plan is not None else FaultPlan.empty()
    obs = Observability.coerce(observability)
    simulation = MeshSimulation(
        scenario.app, scenario.deployment,
        seed=scenario.seed if seed is None else seed,
        classifier=classifier or AppSpecClassifier(scenario.app),
        observability=obs,
        timeouts=timeouts,
    )
    obs = simulation.observability
    decision_log = obs.decisions if obs is not None else None
    provenance = obs.provenance if obs is not None else None
    chaos = ChaosRuntime(simulation, plan)
    ctx = scenario.context()
    fallback_policy = make_fallback(fallback, scenario)
    controllers = {
        name: ClusterController(name, max_rule_age=max_rule_age,
                                fallback=fallback_policy)
        for name in scenario.deployment.cluster_names
    }

    rules = policy.compute_rules(ctx)
    for controller in controllers.values():
        controller.distribute(rules, simulation.table)

    if provenance is not None:
        provenance.bind_run(scenario.name,
                            scenario.seed if seed is None else seed,
                            policy=policy.name)
        provenance.seed_rules(simulation.table.rules())
        if hasattr(policy, "attach_provenance"):
            policy.attach_provenance(provenance)

    def on_epoch(reports, sim) -> None:
        now = sim.sim.now
        reports = chaos.gate_reports(now, reports)
        relayed = []
        for report in reports:
            controller = controllers[report.cluster]
            controller.ingest(report)
            relayed.extend(controller.relay())
        if chaos.controller_available(now):
            update = policy.on_epoch(relayed, ctx)
            for controller in controllers.values():
                controller.touch(now)
            if update is not None:
                for controller in controllers.values():
                    controller.distribute(update, sim.table, now=now)
            if decision_log is not None:
                global_controller = getattr(policy, "controller", None)
                if global_controller is not None:
                    decision_log.record(now, global_controller, update)
            if provenance is not None:
                provenance.record_epoch(
                    now, controller=getattr(policy, "controller", None),
                    update=update, reports=relayed,
                    rules=sim.table.rules())
        else:
            # reports relayed into a dead controller are lost; clusters
            # notice only through the age of their rules
            tripped = [name for name, controller in controllers.items()
                       if controller.check_staleness(now, sim.table, ctx)]
            if provenance is not None:
                # outage epochs still chain: the record captures the
                # fallback installs the dead controller never saw
                provenance.record_epoch(
                    now, controller=getattr(policy, "controller", None),
                    update=None, reports=relayed, rules=sim.table.rules(),
                    outcome="outage", fallback=tuple(tripped))
        if provenance is not None:
            if obs.alerts is not None:
                provenance.check_alerts(now, obs.alerts)
            if obs.anomaly is not None:
                provenance.check_anomalies(now, obs.anomaly.log)
            if obs.breach is not None:
                provenance.check_predictions(now, obs.breach)
            provenance.check_faults(now, chaos.timeline)

    if timeline is not None:
        simulation.run_timeline(timeline, epoch=scenario.epoch,
                                on_epoch=on_epoch if scenario.epoch else None)
    else:
        simulation.run(scenario.demand, scenario.duration,
                       epoch=scenario.epoch,
                       on_epoch=on_epoch if scenario.epoch else None)

    if provenance is not None:
        provenance.check_faults(simulation.sim.now, chaos.timeline)
        provenance.finalize(simulation.sim.now)
    if obs is not None:
        obs.collect(simulation, getattr(policy, "controller", None))

    samples: list[tuple[float, float | None]] = []
    for request in simulation.telemetry.requests:
        if request.done:
            samples.append((request.arrival_time, request.latency))
    for request in simulation.telemetry.failed_requests:
        samples.append((request.arrival_time, None))
    samples.sort(key=lambda item: (item[0], item[1] is None))

    outcome = PolicyOutcome(
        policy=policy.name,
        latencies=simulation.telemetry.latencies(after=scenario.warmup),
        egress_bytes=simulation.network.ledger.total_bytes,
        egress_cost=simulation.network.ledger.total_cost,
        latencies_by_class=simulation.telemetry.latencies_by_class(
            after=scenario.warmup),
    )
    hung = sum(gateway.open_requests
               for gateway in simulation.gateways.values())
    return ChaosRunResult(
        scenario=scenario.name,
        policy=policy.name,
        outcome=outcome,
        samples=samples,
        chaos=chaos,
        controllers=controllers,
        decisions=decision_log,
        egress_cost=simulation.network.ledger.total_cost,
        hung_requests=hung,
        anomalies=obs.anomaly.log if obs is not None
        and obs.anomaly is not None else None,
    )
