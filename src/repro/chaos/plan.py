"""Declarative fault campaigns: typed, sim-timestamped fault events.

The paper's §5 "Challenges" is about what happens when the things SLATE
depends on degrade: the WAN between clusters, the replicas behind a
service, the telemetry feed, and the Global Controller itself. A
:class:`FaultPlan` declares such a campaign as data — a list of typed
fault events, each with an inject time and a duration — which
:class:`~repro.chaos.inject.ChaosRuntime` compiles into engine-scheduled
inject/recover callbacks against a live
:class:`~repro.sim.runner.MeshSimulation`.

Plans are pure values: building one touches no simulator, no RNG stream
and no global state, so the same plan replayed on the same seed yields a
byte-identical run, and the empty plan is indistinguishable from not
using chaos at all.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultPlan", "WanFault", "ReplicaFault", "TelemetryFault",
           "ControlPlaneOutage"]


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ValueError(f"fault start must be >= 0, got {start}")
    if duration <= 0:
        raise ValueError(f"fault duration must be > 0, got {duration}")


@dataclass(frozen=True)
class WanFault:
    """Degrade (or sever) the WAN link between two clusters.

    The effective one-way delay while injected is
    ``base * multiplier + extra_delay`` plus uniform ``[0, jitter)``
    seconds per transfer; ``partition=True`` additionally blackholes all
    transfers on the pair (no delivery, no egress billing).
    """

    start: float
    duration: float
    src: str
    dst: str
    extra_delay: float = 0.0
    multiplier: float = 1.0
    jitter: float = 0.0
    partition: bool = False

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.src == self.dst:
            raise ValueError(f"WAN fault needs two clusters, got {self.src!r}")
        if self.extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {self.extra_delay}")
        if self.multiplier < 0:
            raise ValueError(f"multiplier must be >= 0, got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def label(self) -> str:
        a, b = sorted((self.src, self.dst))
        kind = "partition" if self.partition else "wan"
        return f"{kind}:{a}<->{b}"


@dataclass(frozen=True)
class ReplicaFault:
    """Capacity fault on one (cluster, service) pool.

    ``crash`` removes that many replicas on inject (never the last one)
    and adds them back on recover; ``slowdown`` multiplies service times
    while injected — the slow-replica / noisy-neighbour mode, strictly
    in between healthy and today's all-or-nothing ``fail_service``.
    """

    start: float
    duration: float
    cluster: str
    service: str
    crash: int = 0
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.crash < 0:
            raise ValueError(f"crash must be >= 0, got {self.crash}")
        if self.slowdown <= 0:
            raise ValueError(f"slowdown must be > 0, got {self.slowdown}")
        if self.crash == 0 and not self.slowdown > 1.0:
            raise ValueError(
                "replica fault must crash replicas and/or slow them down")

    @property
    def label(self) -> str:
        return f"replica:{self.service}@{self.cluster}"


@dataclass(frozen=True)
class TelemetryFault:
    """Drop or delay one cluster's epoch reports before the controller.

    Reports harvested while the fault is active never reach
    ``GlobalController.observe`` (``mode="drop"``) or reach it ``delay``
    sim-seconds late (``mode="delay"``), so the controller plans on stale
    EWMA state — the decision log's ``telemetry_age`` makes this visible.
    """

    start: float
    duration: float
    cluster: str
    mode: str = "drop"
    delay: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.mode not in ("drop", "delay"):
            raise ValueError(f"mode must be 'drop' or 'delay', got {self.mode!r}")
        if self.mode == "delay" and self.delay <= 0:
            raise ValueError("delay mode needs delay > 0")
        if self.mode == "drop" and self.delay:
            raise ValueError("drop mode takes no delay")

    @property
    def label(self) -> str:
        return f"telemetry-{self.mode}:{self.cluster}"


@dataclass(frozen=True)
class ControlPlaneOutage:
    """The Global Controller is unreachable for the window.

    While active no epoch reports reach it and no rule updates leave it;
    clusters keep whatever rules they last received. Cluster Controllers
    armed with ``max_rule_age`` + a fallback policy detect the staleness
    and fail over to local-first routing (§5), reconciling when the
    controller returns.
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)

    @property
    def label(self) -> str:
        return "controller-outage"


#: every concrete fault type a plan may contain
_FAULT_TYPES = (WanFault, ReplicaFault, TelemetryFault, ControlPlaneOutage)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault campaign."""

    faults: tuple = ()

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for fault in faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise TypeError(f"not a fault event: {fault!r}")
        # stable sort by start keeps declaration order among ties, so
        # compilation (and therefore the run) is reproducible
        object.__setattr__(self, "faults",
                           tuple(sorted(faults, key=lambda f: f.start)))

    @staticmethod
    def empty() -> "FaultPlan":
        return FaultPlan(())

    @property
    def is_empty(self) -> bool:
        return not self.faults

    @property
    def end(self) -> float:
        """Sim time at which the last fault has recovered (0.0 if empty)."""
        return max((f.start + f.duration for f in self.faults), default=0.0)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> list[str]:
        """One human-readable line per fault, in injection order."""
        return [f"[{f.start:>7.2f}s +{f.duration:<6.2f}s] {f.label}"
                for f in self.faults]
