"""Resilience scoring: how well did the system ride out each fault?

A :class:`ResilienceReport` compares a faulted run against its unfaulted
twin (same scenario, same seed, empty plan) and scores every fault
episode on the run's timeline:

* **detection** — seconds from injection until the control plane visibly
  reacted: a Cluster Controller's stale-rule guard tripping, or the first
  fresh ``solved`` re-plan at/after the injection.
* **time-to-recover** — seconds from injection until the sliding-window
  p95 latency is back within ``band`` × the pre-fault baseline p95,
  measured from the fault's scheduled recovery onward (a fallback can
  hold latency down *during* the fault; recovery is about the steady
  state after it clears).
* **requests failed / degraded** while the episode was open.
* run-level **egress-cost overhead** versus the twin.

All inputs are plain sim-time samples, so the report is as deterministic
as the runs it scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .inject import FaultRecord

__all__ = ["FaultEpisode", "ResilienceReport", "compute_resilience"]

#: latency samples needed before a window p95 is trusted
_MIN_WINDOW_SAMPLES = 5


def _p95(values: list[float]) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return ordered[index]


@dataclass(frozen=True)
class FaultEpisode:
    """Scores for one fault on the timeline."""

    label: str
    kind: str
    injected_at: float
    recovered_at: float
    #: seconds from injection to the first control-plane reaction
    detection_seconds: float | None
    #: seconds from injection until latency re-entered the baseline band
    recovery_seconds: float | None
    #: p95 of the pre-fault window the band is relative to
    baseline_p95: float | None
    requests_failed: int
    requests_degraded: int
    requests_total: int
    #: seconds from injection until the anomaly engine flagged a followed
    #: series (None when detection is off or nothing fired)
    anomaly_detection_seconds: float | None = None
    #: control-plane detection minus anomaly detection: positive means
    #: the detectors saw the fault before the controller visibly reacted
    anomaly_lead_seconds: float | None = None

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "injected_at": self.injected_at,
            "recovered_at": self.recovered_at,
            "detection_seconds": self.detection_seconds,
            "recovery_seconds": self.recovery_seconds,
            "anomaly_detection_seconds": self.anomaly_detection_seconds,
            "anomaly_lead_seconds": self.anomaly_lead_seconds,
            "baseline_p95": self.baseline_p95,
            "requests_failed": self.requests_failed,
            "requests_degraded": self.requests_degraded,
            "requests_total": self.requests_total,
        }


@dataclass
class ResilienceReport:
    """Per-fault episodes plus run-level overhead vs the unfaulted twin."""

    episodes: list[FaultEpisode] = field(default_factory=list)
    faulted_egress_cost: float = 0.0
    baseline_egress_cost: float = 0.0
    band: float = 1.5
    window: float = 2.0

    @property
    def egress_overhead_cost(self) -> float:
        return self.faulted_egress_cost - self.baseline_egress_cost

    @property
    def egress_overhead_ratio(self) -> float:
        if self.baseline_egress_cost <= 0:
            return 0.0
        return self.faulted_egress_cost / self.baseline_egress_cost

    def as_dict(self) -> dict:
        return {
            "episodes": [e.as_dict() for e in self.episodes],
            "faulted_egress_cost": self.faulted_egress_cost,
            "baseline_egress_cost": self.baseline_egress_cost,
            "egress_overhead_cost": self.egress_overhead_cost,
            "egress_overhead_ratio": self.egress_overhead_ratio,
            "band": self.band,
            "window": self.window,
        }

    def render(self) -> str:
        """Fixed-width text table (for the CLI)."""
        header = (f"{'fault':<28} {'inject':>8} {'recover':>8} "
                  f"{'detect(s)':>9} {'anom(s)':>8} {'lead(s)':>8} "
                  f"{'ttr(s)':>8} {'fail':>5} {'degr':>5} {'total':>6}")
        lines = [header, "-" * len(header)]
        for e in self.episodes:
            detect = ("-" if e.detection_seconds is None
                      else f"{e.detection_seconds:.2f}")
            anom = ("-" if e.anomaly_detection_seconds is None
                    else f"{e.anomaly_detection_seconds:.2f}")
            lead = ("-" if e.anomaly_lead_seconds is None
                    else f"{e.anomaly_lead_seconds:+.2f}")
            ttr = ("-" if e.recovery_seconds is None
                   else f"{e.recovery_seconds:.2f}")
            lines.append(
                f"{e.label:<28} {e.injected_at:>8.1f} {e.recovered_at:>8.1f} "
                f"{detect:>9} {anom:>8} {lead:>8} "
                f"{ttr:>8} {e.requests_failed:>5} "
                f"{e.requests_degraded:>5} {e.requests_total:>6}")
        lines.append(
            f"egress cost: faulted={self.faulted_egress_cost:.4f} "
            f"baseline={self.baseline_egress_cost:.4f} "
            f"overhead={self.egress_overhead_cost:+.4f} "
            f"({self.egress_overhead_ratio:.2f}x)")
        return "\n".join(lines)


def compute_resilience(timeline: list[FaultRecord],
                       samples: list[tuple[float, float | None]],
                       baseline_samples: list[tuple[float, float | None]],
                       detection_signals: list[float],
                       faulted_egress_cost: float,
                       baseline_egress_cost: float,
                       *, band: float = 1.5, window: float = 2.0,
                       horizon: float | None = None,
                       anomaly_signals: list[float] | None = None,
                       ) -> ResilienceReport:
    """Score every fault on ``timeline``.

    ``samples`` / ``baseline_samples`` are ``(arrival_time, latency)``
    pairs with ``latency is None`` marking a failed request.
    ``detection_signals`` are sim times at which the control plane
    visibly reacted (fallback trips, fresh re-plans); ``anomaly_signals``
    are sim times at which the streaming anomaly detectors fired (when
    the pillar was enabled) — each episode scores both, plus the lead of
    one over the other. ``horizon`` caps the recovery scan (defaults to
    the last sample's arrival).
    """
    if band < 1.0:
        raise ValueError(f"band must be >= 1.0, got {band}")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    signals = sorted(detection_signals)
    anomalies = sorted(anomaly_signals) if anomaly_signals else []
    completed = [(t, lat) for t, lat in samples if lat is not None]
    if horizon is None:
        horizon = max((t for t, _ in samples), default=0.0)
    baseline_all = _p95([lat for _, lat in baseline_samples
                         if lat is not None])
    report = ResilienceReport(band=band, window=window,
                              faulted_egress_cost=faulted_egress_cost,
                              baseline_egress_cost=baseline_egress_cost)
    for record in timeline:
        # baseline band: the pre-fault window of the faulted run itself,
        # falling back to the twin's whole-run p95 early in the run
        pre = [lat for t, lat in completed
               if record.fired_at - window <= t < record.fired_at]
        baseline_p95 = (_p95(pre) if len(pre) >= _MIN_WINDOW_SAMPLES
                        else baseline_all)
        detection = None
        for signal in signals:
            if signal >= record.fired_at:
                detection = signal - record.fired_at
                break
        anomaly_detection = None
        for signal in anomalies:
            if signal >= record.fired_at:
                anomaly_detection = signal - record.fired_at
                break
        anomaly_lead = (detection - anomaly_detection
                        if detection is not None
                        and anomaly_detection is not None else None)
        recovery = None
        recovered_until = None
        if baseline_p95 is not None:
            threshold = band * baseline_p95
            start = record.resolved_at
            while start + window <= horizon + window:
                window_lat = [lat for t, lat in completed
                              if start <= t < start + window]
                if (len(window_lat) >= _MIN_WINDOW_SAMPLES
                        and _p95(window_lat) <= threshold):
                    recovery = start + window - record.fired_at
                    recovered_until = start + window
                    break
                start += window
        episode_end = (recovered_until if recovered_until is not None
                       else horizon)
        in_episode = [(t, lat) for t, lat in samples
                      if record.fired_at <= t <= episode_end]
        failed = sum(1 for _, lat in in_episode if lat is None)
        degraded = 0
        if baseline_p95 is not None:
            degraded = sum(1 for _, lat in in_episode
                           if lat is not None and lat > band * baseline_p95)
        report.episodes.append(FaultEpisode(
            label=record.label,
            kind=record.kind,
            injected_at=record.fired_at,
            recovered_at=record.resolved_at,
            detection_seconds=detection,
            recovery_seconds=recovery,
            anomaly_detection_seconds=anomaly_detection,
            anomaly_lead_seconds=anomaly_lead,
            baseline_p95=baseline_p95,
            requests_failed=failed,
            requests_degraded=degraded,
            requests_total=len(in_episode),
        ))
    return report
