"""repro.chaos — declarative fault injection and resilience scoring.

The paper's §5 challenges as a runnable subsystem: declare a
:class:`FaultPlan` of typed, sim-timestamped fault events (WAN
degradation/partition, replica crash/slowdown, telemetry drop/delay,
control-plane outage), compile it onto a simulation with
:class:`ChaosRuntime`, drive the chaos-aware control loop with
:func:`run_chaos`, and score the outcome against an unfaulted twin with
:class:`ResilienceReport`.

Determinism contract: the same seed plus the same plan is byte-identical
run to run, and the empty plan is byte-identical to not using chaos.
"""

from .harness import ChaosRunResult, make_fallback, run_chaos
from .inject import ChaosRuntime, FaultRecord
from .plan import (ControlPlaneOutage, FaultPlan, ReplicaFault,
                   TelemetryFault, WanFault)
from .report import FaultEpisode, ResilienceReport, compute_resilience

__all__ = [
    "FaultPlan", "WanFault", "ReplicaFault", "TelemetryFault",
    "ControlPlaneOutage",
    "ChaosRuntime", "FaultRecord",
    "ChaosRunResult", "run_chaos", "make_fallback",
    "FaultEpisode", "ResilienceReport", "compute_resilience",
]
