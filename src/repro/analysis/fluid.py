"""Fluid-model evaluation: predict system behaviour from routing rules.

Given an application, deployment, demand, and a rule set, propagate demand
deterministically down every class's call tree (rates, not discrete
requests), yielding per-pool offered work, per-edge cross-cluster flows,
predicted mean latency (via the queueing models), and egress cost rate.

This is the analytic counterpart of a full simulation run — used by the
Fig. 3/Fig. 4 benches (which need many points quickly) and as a test oracle:
simulated means converge to fluid predictions as run length grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.latency.mm1 import PoolDelayModel
from ..core.rules import RuleSet
from ..mesh.routing_table import RouteKey, WILDCARD_CLASS
from ..sim.apps import AppSpec
from ..sim.topology import DeploymentSpec
from ..sim.workload import DemandMatrix

__all__ = ["FluidFlow", "FluidPrediction", "evaluate_rules"]


@dataclass(frozen=True)
class FluidFlow:
    """One (class, edge, src, dst) flow in the fluid solution."""

    traffic_class: str
    edge_index: int          # -1 = ingress hop
    src: str
    dst: str
    rate: float
    request_bytes: int
    response_bytes: int


@dataclass
class FluidPrediction:
    """Predicted steady-state behaviour under a rule set."""

    flows: list[FluidFlow] = field(default_factory=list)
    #: (service, cluster) → offered work, erlangs
    pool_work: dict[tuple[str, str], float] = field(default_factory=dict)
    pool_utilization: dict[tuple[str, str], float] = field(
        default_factory=dict)
    backlog: float = 0.0
    network_delay_rate: float = 0.0
    egress_cost_rate: float = 0.0
    egress_bytes_rate: float = 0.0
    total_demand: float = 0.0

    @property
    def stable(self) -> bool:
        """False when any pool is at or beyond capacity."""
        return math.isfinite(self.backlog)

    @property
    def mean_latency(self) -> float:
        """Predicted mean end-to-end latency, seconds (inf if unstable)."""
        if self.total_demand <= 0:
            return 0.0
        return (self.backlog + self.network_delay_rate) / self.total_demand

    def cross_cluster_rate(self) -> float:
        """Total requests/second crossing cluster boundaries."""
        return sum(f.rate for f in self.flows if f.src != f.dst)


class _RuleLookup:
    """Weights for (service, class, src): rules, wildcard, proxy default."""

    def __init__(self, rules: RuleSet, deployment: DeploymentSpec) -> None:
        self._rules = rules.by_key()
        self._deployment = deployment

    def weights(self, service: str, traffic_class: str,
                src: str) -> dict[str, float]:
        deployed = self._deployment.clusters_with(service)
        if not deployed:
            raise ValueError(f"service {service!r} deployed nowhere")
        for cls in (traffic_class, WILDCARD_CLASS):
            rule = self._rules.get(RouteKey(service, cls, src))
            if rule:
                usable = {c: w for c, w in rule.items() if c in deployed}
                if usable:
                    total = sum(usable.values())
                    return {c: w / total for c, w in usable.items()}
        if src in deployed:
            return {src: 1.0}
        nearest = min(deployed, key=lambda c: (
            self._deployment.latency.one_way(src, c), c))
        return {nearest: 1.0}


def evaluate_rules(app: AppSpec, deployment: DeploymentSpec,
                   demand: DemandMatrix, rules: RuleSet,
                   delay_model: str = "mmc") -> FluidPrediction:
    """Propagate demand through the rules and predict performance."""
    lookup = _RuleLookup(rules, deployment)
    prediction = FluidPrediction(total_demand=demand.total_rps())

    for cls_name, spec in sorted(app.classes.items()):
        # execution rate of each service at each cluster for this class
        exec_rate: dict[tuple[str, str], float] = {}
        # ingress hop
        for cluster in deployment.cluster_names:
            rps = demand.rps(cls_name, cluster)
            if rps <= 0:
                continue
            for dst, weight in lookup.weights(spec.root_service, cls_name,
                                              cluster).items():
                rate = rps * weight
                prediction.flows.append(FluidFlow(
                    cls_name, -1, cluster, dst, rate,
                    spec.ingress_request_bytes, spec.ingress_response_bytes))
                key = (spec.root_service, dst)
                exec_rate[key] = exec_rate.get(key, 0.0) + rate
        # walk the tree in BFS order (parents before children)
        for service in spec.services():
            for edge_index, edge in enumerate(spec.edges):
                if edge.caller != service:
                    continue
                for cluster in deployment.cluster_names:
                    origin = exec_rate.get((service, cluster), 0.0)
                    if origin <= 0:
                        continue
                    call_rate = origin * edge.calls_per_request
                    for dst, weight in lookup.weights(
                            edge.callee, cls_name, cluster).items():
                        rate = call_rate * weight
                        prediction.flows.append(FluidFlow(
                            cls_name, edge_index, cluster, dst, rate,
                            edge.request_bytes, edge.response_bytes))
                        key = (edge.callee, dst)
                        exec_rate[key] = exec_rate.get(key, 0.0) + rate
        # accumulate offered work
        for (service, cluster), rate in exec_rate.items():
            st = spec.exec_time_of(service)
            if st > 0:
                key = (service, cluster)
                prediction.pool_work[key] = (
                    prediction.pool_work.get(key, 0.0) + rate * st)

    # queueing backlog
    backlog = 0.0
    for (service, cluster), work in prediction.pool_work.items():
        replicas = deployment.replicas(service, cluster)
        if replicas <= 0:
            raise ValueError(
                f"flow routed to undeployed pool {service!r}@{cluster!r}")
        prediction.pool_utilization[(service, cluster)] = work / replicas
        model = PoolDelayModel(replicas, mode=delay_model)
        backlog += model.backlog(work)
    prediction.backlog = backlog

    # network delay and egress
    for flow in prediction.flows:
        prediction.network_delay_rate += (
            flow.rate * deployment.latency.rtt(flow.src, flow.dst))
        if flow.src != flow.dst:
            out_cost = deployment.pricing.per_byte(flow.src, flow.dst)
            back_cost = deployment.pricing.per_byte(flow.dst, flow.src)
            prediction.egress_cost_rate += flow.rate * (
                flow.request_bytes * out_cost
                + flow.response_bytes * back_cost)
            prediction.egress_bytes_rate += flow.rate * (
                flow.request_bytes + flow.response_bytes)
    return prediction
