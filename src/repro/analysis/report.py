"""Text rendering of figure series and comparison tables.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output consistent and greppable.
"""

from __future__ import annotations

from typing import Sequence

from .cdf import EmpiricalCDF
from .compare import Comparison

__all__ = ["format_table", "format_cdf_series", "format_comparison"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    cells.extend([_fmt(value) for value in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_cdf_series(cdfs: dict[str, EmpiricalCDF],
                      probabilities: Sequence[float] = (
                          0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99),
                      unit_scale: float = 1000.0,
                      unit: str = "ms",
                      title: str | None = None) -> str:
    """Render several CDFs as quantile rows (one column per policy)."""
    names = sorted(cdfs)
    headers = ["quantile"] + [f"{n} ({unit})" for n in names]
    rows = []
    for p in probabilities:
        rows.append([f"p{int(p * 100):02d}"]
                    + [cdfs[n].quantile(p) * unit_scale for n in names])
    rows.append(["mean"] + [cdfs[n].mean * unit_scale for n in names])
    return format_table(headers, rows, title=title)


def format_comparison(comparison: Comparison, baseline: str,
                      target: str) -> str:
    """One-scenario summary: per-policy stats plus headline ratios."""
    headers = ["policy", "mean (ms)", "p50 (ms)", "p99 (ms)", "requests",
               "egress ($/run)"]
    rows = []
    for name in sorted(comparison.outcomes):
        outcome = comparison.outcomes[name]
        summary = outcome.summary()
        rows.append([name, summary.mean * 1000, summary.p50 * 1000,
                     summary.p99 * 1000, summary.count,
                     outcome.egress_cost])
    lines = [format_table(headers, rows,
                          title=f"scenario: {comparison.scenario}")]
    ratio = comparison.latency_ratio(baseline, target)
    lines.append(f"{baseline} / {target} mean-latency ratio: {ratio:.2f}x")
    base_cost = comparison.outcome(baseline).egress_cost
    tgt_cost = comparison.outcome(target).egress_cost
    if tgt_cost > 0:
        lines.append(f"{baseline} / {target} egress-cost ratio: "
                     f"{base_cost / tgt_cost:.2f}x")
    return "\n".join(lines)
