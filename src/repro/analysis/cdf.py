"""Empirical CDFs — the form of the paper's Fig. 6 results."""

from __future__ import annotations

import numpy as np

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """Empirical cumulative distribution over a sample of values."""

    def __init__(self, values) -> None:
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        if not np.all(np.isfinite(array)):
            raise ValueError("CDF sample contains non-finite values")
        self._values = np.sort(array)

    @property
    def n(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> np.ndarray:
        """Sorted copy of the sample."""
        return self._values.copy()

    @property
    def mean(self) -> float:
        return float(self._values.mean())

    @property
    def min(self) -> float:
        return float(self._values[0])

    @property
    def max(self) -> float:
        return float(self._values[-1])

    def quantile(self, q: float) -> float:
        """Value at cumulative probability ``q`` (linear interpolation)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._values, q))

    def percentile(self, p: float) -> float:
        """Convenience: ``percentile(99)`` = ``quantile(0.99)``."""
        return self.quantile(p / 100.0)

    def probability_below(self, x: float) -> float:
        """P[X <= x] under the empirical distribution."""
        return float(np.searchsorted(self._values, x, side="right")
                     / self._values.size)

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """(value, cumulative probability) pairs for plotting/reporting."""
        if points < 2:
            raise ValueError(f"need at least 2 points, got {points}")
        probs = np.linspace(0.0, 1.0, points)
        return [(self.quantile(float(p)), float(p)) for p in probs]

    def __repr__(self) -> str:
        return (f"EmpiricalCDF(n={self.n}, mean={self.mean:.6f}, "
                f"p99={self.quantile(0.99):.6f})")
