"""Summary statistics for latency samples."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["LatencySummary", "summarize", "slo_attainment",
           "mean_confidence_interval"]


@dataclass(frozen=True)
class LatencySummary:
    """The stats the paper's evaluation discusses, in seconds."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    max: float

    def as_ms(self) -> dict[str, float]:
        """Milliseconds rendering (count passed through)."""
        return {
            "count": self.count,
            "mean": self.mean * 1000,
            "p50": self.p50 * 1000,
            "p90": self.p90 * 1000,
            "p95": self.p95 * 1000,
            "p99": self.p99 * 1000,
            "max": self.max * 1000,
        }


def summarize(values) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw latencies."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return LatencySummary(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.quantile(array, 0.50)),
        p90=float(np.quantile(array, 0.90)),
        p95=float(np.quantile(array, 0.95)),
        p99=float(np.quantile(array, 0.99)),
        max=float(array.max()),
    )


def slo_attainment(values, threshold: float) -> float:
    """Fraction of requests meeting a latency SLO (latency <= threshold)."""
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute attainment of an empty sample")
    return float((array <= threshold).mean())


def mean_confidence_interval(values, confidence: float = 0.95,
                             ) -> tuple[float, float, float]:
    """(mean, low, high) Student-t CI for the sample mean."""
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(list(values), dtype=float)
    if array.size < 2:
        raise ValueError("need at least two samples for an interval")
    mean = float(array.mean())
    sem = float(array.std(ddof=1)) / math.sqrt(array.size)
    if sem == 0:
        return mean, mean, mean
    margin = float(scipy_stats.t.ppf((1 + confidence) / 2, array.size - 1)
                   * sem)
    return mean, mean - margin, mean + margin
