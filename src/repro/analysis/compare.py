"""Policy-vs-policy comparison: the quantities the paper reports.

"SLATE outperforms ... by up to 3.5x in average latency and reduces egress
bandwidth cost by up to 11.6x" — those are ratios between per-policy runs of
the same scenario, which this module computes from harvested run outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cdf import EmpiricalCDF
from .stats import LatencySummary, summarize

__all__ = ["PolicyOutcome", "Comparison"]


@dataclass
class PolicyOutcome:
    """What one policy achieved on one scenario."""

    policy: str
    latencies: list[float]
    egress_bytes: int = 0
    egress_cost: float = 0.0
    #: latencies per traffic class (optional, for §4.4-style breakdowns)
    latencies_by_class: dict[str, list[float]] = field(default_factory=dict)

    def summary(self) -> LatencySummary:
        return summarize(self.latencies)

    def cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.latencies)


@dataclass
class Comparison:
    """Outcomes of several policies on the same scenario."""

    scenario: str
    outcomes: dict[str, PolicyOutcome] = field(default_factory=dict)

    def add(self, outcome: PolicyOutcome) -> None:
        if outcome.policy in self.outcomes:
            raise ValueError(
                f"duplicate outcome for policy {outcome.policy!r}")
        self.outcomes[outcome.policy] = outcome

    def outcome(self, policy: str) -> PolicyOutcome:
        try:
            return self.outcomes[policy]
        except KeyError:
            raise KeyError(f"no outcome for policy {policy!r}; have "
                           f"{sorted(self.outcomes)}") from None

    def latency_ratio(self, baseline: str, target: str,
                      stat: str = "mean") -> float:
        """How many times slower ``baseline`` is than ``target``.

        ``stat`` is any :class:`LatencySummary` field (mean, p50, p99, ...).
        """
        base = getattr(self.outcome(baseline).summary(), stat)
        tgt = getattr(self.outcome(target).summary(), stat)
        if tgt <= 0:
            raise ValueError(f"target {target!r} has non-positive {stat}")
        return base / tgt

    def egress_cost_ratio(self, baseline: str, target: str) -> float:
        """How many times more egress ``baseline`` pays than ``target``."""
        base = self.outcome(baseline).egress_cost
        tgt = self.outcome(target).egress_cost
        if tgt <= 0:
            raise ValueError(
                f"target {target!r} has zero egress cost; ratio undefined")
        return base / tgt

    def cdfs(self) -> dict[str, EmpiricalCDF]:
        return {name: outcome.cdf()
                for name, outcome in self.outcomes.items()}
