"""Result export: latencies, spans, and comparisons to CSV / JSONL.

Simulation results stay inside Python objects by default; these writers
produce plain-text artifacts for external plotting or archival — the file
formats a downstream user would feed to pandas/gnuplot/R.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..mesh.telemetry import RunTelemetry
from ..sim.request import Span
from .compare import Comparison

__all__ = ["write_latencies_csv", "write_spans_jsonl",
           "write_comparison_csv"]


def write_latencies_csv(telemetry: RunTelemetry, path: str | Path,
                        after: float = 0.0) -> int:
    """One row per completed request; returns the row count.

    Columns: request_id, traffic_class, ingress_cluster, arrival_time,
    latency (seconds).
    """
    rows = 0
    # exporter module: CSV artifacts are its declared purpose (D08)
    with open(path, "w", newline="",   # lint: ignore[D08]
              encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["request_id", "traffic_class", "ingress_cluster",
                         "arrival_time", "latency"])
        for request in telemetry.requests:
            if not request.done or request.arrival_time < after:
                continue
            writer.writerow([request.request_id, request.traffic_class,
                             request.ingress_cluster,
                             f"{request.arrival_time:.6f}",
                             f"{request.latency:.6f}"])
            rows += 1
    return rows


def write_spans_jsonl(spans: list[Span], path: str | Path) -> int:
    """One JSON object per span (a minimal OTLP-ish trace dump)."""
    count = 0
    # exporter module: JSONL artifacts are its declared purpose (D08)
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for span in spans:
            handle.write(json.dumps({
                "request_id": span.request_id,
                "traffic_class": span.traffic_class,
                "service": span.service,
                "cluster": span.cluster,
                "caller_service": span.caller_service,
                "caller_cluster": span.caller_cluster,
                "enqueue_time": span.enqueue_time,
                "start_time": span.start_time,
                "end_time": span.end_time,
                "exec_time": span.exec_time,
                "request_bytes": span.request_bytes,
                "response_bytes": span.response_bytes,
            }) + "\n")
            count += 1
    return count


def write_comparison_csv(comparison: Comparison, path: str | Path) -> int:
    """Per-policy summary rows for one scenario."""
    # exporter module: CSV artifacts are its declared purpose (D08)
    with open(path, "w", newline="",   # lint: ignore[D08]
              encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "policy", "requests", "mean", "p50",
                         "p90", "p99", "egress_bytes", "egress_cost"])
        count = 0
        for name in sorted(comparison.outcomes):
            outcome = comparison.outcomes[name]
            summary = outcome.summary()
            writer.writerow([
                comparison.scenario, name, summary.count,
                f"{summary.mean:.6f}", f"{summary.p50:.6f}",
                f"{summary.p90:.6f}", f"{summary.p99:.6f}",
                outcome.egress_bytes, f"{outcome.egress_cost:.8f}",
            ])
            count += 1
    return count
