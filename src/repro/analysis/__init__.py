"""Analysis: CDFs, summaries, policy comparisons, fluid-model prediction."""

from .cdf import EmpiricalCDF
from .compare import Comparison, PolicyOutcome
from .fluid import FluidFlow, FluidPrediction, evaluate_rules
from .report import format_cdf_series, format_comparison, format_table
from .stats import (LatencySummary, mean_confidence_interval,
                    slo_attainment, summarize)

__all__ = [
    "EmpiricalCDF",
    "Comparison", "PolicyOutcome",
    "FluidFlow", "FluidPrediction", "evaluate_rules",
    "format_cdf_series", "format_comparison", "format_table",
    "LatencySummary", "mean_confidence_interval", "slo_attainment",
    "summarize",
]

from .export import (write_comparison_csv, write_latencies_csv,
                     write_spans_jsonl)

__all__ += ["write_comparison_csv", "write_latencies_csv",
            "write_spans_jsonl"]
