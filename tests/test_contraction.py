"""Tests for topology contraction (§5 scalability heuristic)."""

import pytest

from repro.analysis.fluid import evaluate_rules
from repro.core.optimizer import TEProblem, solve
from repro.core.optimizer.contraction import (contract_problem,
                                              group_clusters,
                                              solve_contracted)
from repro.sim import (DemandMatrix, DeploymentSpec, LatencyMatrix,
                       linear_chain_app)


def six_cluster_latency():
    """Two geographic bundles of three clusters each, far apart."""
    names = ["e0", "e1", "e2", "w0", "w1", "w2"]
    delays = {}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            same_coast = a[0] == b[0]
            delays[(a, b)] = 0.002 if same_coast else 0.040
    return LatencyMatrix(names, delays)


def make_problem(west_heavy=True):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    latency = six_cluster_latency()
    deployment = DeploymentSpec.uniform(app.services(),
                                        list(latency.clusters), replicas=4,
                                        latency=latency)
    demand = DemandMatrix()
    for cluster in latency.clusters:
        heavy = cluster.startswith("w") == west_heavy
        demand.set("default", cluster, 330.0 if heavy else 80.0)
    return app, deployment, TEProblem.from_specs(app, deployment, demand)


class TestGrouping:
    def test_groups_by_proximity(self):
        latency = six_cluster_latency()
        groups = group_clusters(latency, list(latency.clusters), 2)
        assert groups == [["e0", "e1", "e2"], ["w0", "w1", "w2"]]

    def test_full_contraction_and_identity(self):
        latency = six_cluster_latency()
        clusters = list(latency.clusters)
        assert len(group_clusters(latency, clusters, 1)) == 1
        identity = group_clusters(latency, clusters, 6)
        assert identity == [[c] for c in sorted(clusters)]

    def test_validation(self):
        latency = six_cluster_latency()
        with pytest.raises(ValueError):
            group_clusters(latency, list(latency.clusters), 0)
        with pytest.raises(ValueError):
            group_clusters(latency, list(latency.clusters), 7)


class TestContraction:
    def test_contracted_problem_sums_capacity_and_demand(self):
        app, deployment, problem = make_problem()
        groups = group_clusters(problem.latency, problem.clusters, 2)
        contracted = contract_problem(problem, groups)
        assert contracted.clusters == ["e0+e1+e2", "w0+w1+w2"]
        assert contracted.replica_count("S1", "w0+w1+w2") == 12
        assert contracted.workloads["default"].demand[
            "w0+w1+w2"] == pytest.approx(3 * 330.0)
        assert contracted.total_demand() == pytest.approx(
            problem.total_demand())

    def test_contracted_latency_is_mean_of_pairs(self):
        app, deployment, problem = make_problem()
        groups = group_clusters(problem.latency, problem.clusters, 2)
        contracted = contract_problem(problem, groups)
        assert contracted.latency.one_way(
            "e0+e1+e2", "w0+w1+w2") == pytest.approx(0.040)

    def test_incomplete_groups_rejected(self):
        app, deployment, problem = make_problem()
        with pytest.raises(ValueError, match="do not cover"):
            contract_problem(problem, [["e0", "e1"]])


class TestSolveContracted:
    def test_rules_reference_real_clusters(self):
        app, deployment, problem = make_problem()
        solution = solve_contracted(problem, n_groups=2)
        clusters = set(problem.clusters)
        for rule in solution.rules:
            assert rule.src_cluster in clusters
            assert set(rule.weight_map()) <= clusters

    def test_expanded_rules_feasible_and_near_optimal(self):
        app, deployment, problem = make_problem()
        solution = solve_contracted(problem, n_groups=2)
        prediction = evaluate_rules(app, deployment,
                                    DemandMatrix({
                                        ("default", c):
                                        problem.workloads["default"]
                                        .demand.get(c, 0.0)
                                        for c in problem.clusters
                                    }), solution.rules)
        assert prediction.stable
        full = solve(problem)
        # contraction loses some optimality but stays in the ballpark
        assert prediction.mean_latency <= full.predicted_mean_latency * 1.6

    def test_identity_contraction_matches_full_solve(self):
        app, deployment, problem = make_problem()
        solution = solve_contracted(problem, n_groups=len(problem.clusters))
        full = solve(problem)
        assert solution.contracted_result.objective == pytest.approx(
            full.objective, rel=1e-6)

    def test_single_group_keeps_everything_internal(self):
        app, deployment, problem = make_problem()
        solution = solve_contracted(problem, n_groups=1)
        # one super-cluster: the contracted view sees no WAN at all
        assert solution.contracted_result.predicted_egress_cost_rate == 0.0
        # local-affinity expansion: intra-group weight stays at the source
        rule = solution.rules.rule_for("S1", "default", "w0")
        assert rule.weight_map() == {"w0": pytest.approx(1.0)}


def test_unknown_expansion_mode_rejected():
    from repro.core.optimizer.contraction import expand_rules
    app, deployment, problem = make_problem()
    groups = group_clusters(problem.latency, problem.clusters, 2)
    contracted = solve(contract_problem(problem, groups))
    with pytest.raises(ValueError, match="expansion"):
        expand_rules(problem, groups, contracted, expansion="magic")


def test_rebalance_expansion_spreads_intra_group():
    app, deployment, problem = make_problem()
    solution = solve_contracted(problem, n_groups=1, expansion="rebalance")
    rule = solution.rules.rule_for("S1", "default", "w0")
    weights = rule.weight_map()
    # capacity-proportional across all six members, not pinned to w0
    assert len(weights) == 6
    assert all(w == pytest.approx(1 / 6) for w in weights.values())
