"""Tests for traffic classification and automatic class derivation."""

import pytest

from repro.core.classes.classifier import (AppSpecClassifier, MatchRule,
                                           MethodPathClassifier,
                                           RuleBasedClassifier,
                                           SingleClassClassifier,
                                           canonical_class_name)
from repro.core.classes.derivation import (OTHER_CLASS, derive_classes)
from repro.sim.apps import two_class_app
from repro.sim.request import RequestAttributes


def attrs(service="S1", method="GET", path="/", headers=None):
    return RequestAttributes.make(service, method, path, headers)


class TestSingleClass:
    def test_everything_same_class(self):
        classifier = SingleClassClassifier()
        assert classifier.classify(attrs()) == "default"
        assert classifier.classify(attrs(path="/other")) == "default"


class TestRuleBased:
    def test_first_match_wins(self):
        classifier = RuleBasedClassifier(rules=[
            MatchRule("heavy", path_prefix="/big"),
            MatchRule("get", method="GET"),
        ])
        assert classifier.classify(attrs(method="GET", path="/big")) == "heavy"
        assert classifier.classify(attrs(method="GET")) == "get"

    def test_fallback(self):
        classifier = RuleBasedClassifier(rules=[MatchRule("x", method="PUT")],
                                         fallback="misc")
        assert classifier.classify(attrs()) == "misc"

    def test_header_match_case_insensitive_name(self):
        classifier = RuleBasedClassifier(rules=[
            MatchRule("gold", header=("X-Tier", "gold"))])
        assert classifier.classify(
            attrs(headers={"x-tier": "gold"})) == "gold"
        assert classifier.classify(
            attrs(headers={"x-tier": "silver"})) == "default"

    def test_service_match(self):
        classifier = RuleBasedClassifier(rules=[MatchRule("a", service="A")])
        assert classifier.classify(attrs(service="A")) == "a"
        assert classifier.classify(attrs(service="B")) == "default"


class TestMethodPath:
    def test_canonical_name(self):
        classifier = MethodPathClassifier()
        assert (classifier.classify(attrs("S", "POST", "/work"))
                == canonical_class_name("S", "POST", "/work"))

    def test_allow_list_enforced(self):
        known = {canonical_class_name("S", "GET", "/a")}
        classifier = MethodPathClassifier(known=known, fallback="other")
        assert classifier.classify(attrs("S", "GET", "/a")) != "other"
        assert classifier.classify(attrs("S", "GET", "/b")) == "other"


class TestAppSpecClassifier:
    def test_matches_app_classes(self):
        app = two_class_app()
        classifier = AppSpecClassifier(app)
        light = app.classes["L"].attributes
        heavy = app.classes["H"].attributes
        assert classifier.classify(light) == "L"
        assert classifier.classify(heavy) == "H"

    def test_unknown_attributes_raise_without_fallback(self):
        classifier = AppSpecClassifier(two_class_app())
        with pytest.raises(KeyError):
            classifier.classify(attrs("S1", "GET", "/unknown"))

    def test_fallback_used_for_unknown(self):
        classifier = AppSpecClassifier(two_class_app(), fallback="L")
        assert classifier.classify(attrs("S1", "GET", "/unknown")) == "L"

    def test_single_class_app_gets_implicit_fallback(self):
        from repro.sim.apps import linear_chain_app
        classifier = AppSpecClassifier(linear_chain_app())
        assert classifier.classify(attrs("S1", "GET", "/whatever")) == "default"


class TestDerivation:
    def observations(self):
        data = []
        data += [attrs("S", "GET", "/popular")] * 500
        data += [attrs("S", "POST", "/heavy")] * 300
        data += [attrs("S", "GET", "/rare")] * 5
        data += [attrs("S", "GET", f"/long-tail/{i}") for i in range(20)]
        return data

    def test_popular_signatures_kept(self):
        derived = derive_classes(self.observations(), max_classes=8,
                                 min_share=0.01, min_samples=30)
        popular = canonical_class_name("S", "GET", "/popular")
        heavy = canonical_class_name("S", "POST", "/heavy")
        assert derived.assignment[popular] == popular
        assert derived.assignment[heavy] == heavy

    def test_tail_folds_into_other(self):
        derived = derive_classes(self.observations(), max_classes=8,
                                 min_share=0.01, min_samples=30)
        rare = canonical_class_name("S", "GET", "/rare")
        assert derived.assignment[rare] == OTHER_CLASS
        assert derived.support[OTHER_CLASS] == 25

    def test_max_classes_cap(self):
        derived = derive_classes(self.observations(), max_classes=2,
                                 min_share=0.0, min_samples=1)
        # one kept class + catch-all
        assert len(derived.class_names) == 2

    def test_shares_sum_to_one(self):
        derived = derive_classes(self.observations())
        total = sum(derived.share(name) for name in derived.class_names)
        assert total == pytest.approx(1.0)

    def test_derived_classifier_routes_tail_to_other(self):
        derived = derive_classes(self.observations(), max_classes=8,
                                 min_share=0.01, min_samples=30)
        classifier = derived.classifier()
        assert classifier.classify(attrs("S", "GET", "/rare")) == OTHER_CLASS
        popular = canonical_class_name("S", "GET", "/popular")
        assert classifier.classify(attrs("S", "GET", "/popular")) == popular

    def test_empty_observations(self):
        derived = derive_classes([])
        assert derived.total_observations == 0
        assert derived.share("anything") == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            derive_classes([], max_classes=0)
        with pytest.raises(ValueError):
            derive_classes([], min_share=2.0)
        with pytest.raises(ValueError):
            derive_classes([], min_samples=0)

    def test_determinism_under_ties(self):
        data = [attrs("S", "GET", "/a")] * 50 + [attrs("S", "GET", "/b")] * 50
        first = derive_classes(data, max_classes=2, min_share=0.0,
                               min_samples=1)
        second = derive_classes(data, max_classes=2, min_share=0.0,
                                min_samples=1)
        assert first.assignment == second.assignment
