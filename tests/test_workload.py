"""Tests for demand matrices and arrival processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.request import RequestAttributes
from repro.sim.rng import RngRegistry
from repro.sim.workload import (DemandMatrix, RateProfile, RateSegment,
                                TrafficSource)


class TestDemandMatrix:
    def test_set_and_get(self):
        demand = DemandMatrix()
        demand.set("default", "west", 100.0)
        assert demand.rps("default", "west") == 100.0
        assert demand.rps("default", "east") == 0.0

    def test_zero_clears_entry(self):
        demand = DemandMatrix({("a", "west"): 5.0})
        demand.set("a", "west", 0.0)
        assert demand.items() == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DemandMatrix({("a", "west"): -1.0})

    def test_totals(self):
        demand = DemandMatrix({("a", "west"): 100.0, ("b", "west"): 50.0,
                               ("a", "east"): 25.0})
        assert demand.total_rps() == 175.0
        assert demand.cluster_rps("west") == 150.0
        assert demand.classes() == ["a", "b"]
        assert demand.clusters() == ["east", "west"]

    def test_scaled(self):
        demand = DemandMatrix({("a", "west"): 100.0})
        assert demand.scaled(0.5).rps("a", "west") == 50.0
        with pytest.raises(ValueError):
            demand.scaled(-1)

    def test_items_deterministic_order(self):
        demand = DemandMatrix({("b", "west"): 1.0, ("a", "east"): 2.0})
        assert demand.items() == [("a", "east", 2.0), ("b", "west", 1.0)]


class TestRateProfile:
    def test_constant(self):
        profile = RateProfile.constant(10.0, 5.0)
        assert profile.end == 5.0
        assert profile.segment_at(2.0).rps == 10.0
        assert profile.segment_at(5.0) is None

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            RateProfile([RateSegment(0, 2, 1.0), RateSegment(1, 3, 1.0)])

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            RateSegment(1.0, 1.0, 5.0)

    def test_gap_yields_zero_rate_filler(self):
        profile = RateProfile([RateSegment(0, 1, 5.0), RateSegment(2, 3, 5.0)])
        filler = profile.segment_at(1.5)
        assert filler.rps == 0.0
        assert filler.end == 2.0


def run_source(profile, deterministic, seed=0):
    sim = Simulator()
    accepted = []
    source = TrafficSource(
        sim=sim, profile=profile,
        attributes=RequestAttributes.make("S1"),
        ingress_cluster="west", accept=accepted.append,
        rng=RngRegistry(seed).stream("arrivals"),
        deterministic=deterministic)
    source.start()
    sim.run()
    return accepted


def test_deterministic_source_exact_count():
    requests = run_source(RateProfile.constant(10.0, 2.0),
                          deterministic=True)
    # interarrival 0.1s over [0, 2): arrivals at 0.1 .. 1.9 = 19 requests
    assert len(requests) == 19
    assert requests[0].arrival_time == pytest.approx(0.1)


def test_poisson_source_rate_approximately_right():
    requests = run_source(RateProfile.constant(200.0, 30.0),
                          deterministic=False)
    assert len(requests) == pytest.approx(6000, rel=0.10)


def test_poisson_reproducible_by_seed():
    a = run_source(RateProfile.constant(50.0, 5.0), False, seed=3)
    b = run_source(RateProfile.constant(50.0, 5.0), False, seed=3)
    assert [r.arrival_time for r in a] == [r.arrival_time for r in b]


def test_arrivals_stop_at_profile_end():
    requests = run_source(RateProfile.constant(100.0, 1.0), True)
    assert all(r.arrival_time < 1.0 for r in requests)


def test_rate_change_mid_run():
    profile = RateProfile([RateSegment(0, 1, 100.0), RateSegment(1, 2, 10.0)])
    requests = run_source(profile, deterministic=True)
    first = sum(1 for r in requests if r.arrival_time < 1.0)
    second = sum(1 for r in requests if r.arrival_time >= 1.0)
    assert first == pytest.approx(99, abs=2)
    assert second == pytest.approx(10, abs=2)


def test_zero_rate_segment_produces_nothing():
    profile = RateProfile([RateSegment(0, 1, 0.0), RateSegment(1, 2, 10.0)])
    requests = run_source(profile, deterministic=True)
    assert all(r.arrival_time >= 1.0 for r in requests)


def test_request_attributes_stamped():
    requests = run_source(RateProfile.constant(10.0, 1.0), True)
    assert all(r.attributes.service == "S1" for r in requests)
    assert all(r.ingress_cluster == "west" for r in requests)
