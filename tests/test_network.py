"""Tests for the WAN model: delays, egress metering, pricing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (GB, EgressPricing, LatencyMatrix, WanNetwork)


def simple_latency():
    return LatencyMatrix.from_ms(["a", "b", "c"], {
        ("a", "b"): 10.0, ("b", "c"): 20.0, ("a", "c"): 25.0,
    })


def test_one_way_symmetric():
    lat = simple_latency()
    assert lat.one_way("a", "b") == pytest.approx(0.010)
    assert lat.one_way("b", "a") == pytest.approx(0.010)


def test_rtt_is_twice_one_way():
    lat = simple_latency()
    assert lat.rtt("a", "c") == pytest.approx(0.050)


def test_intra_cluster_delay_default():
    lat = simple_latency()
    assert lat.one_way("a", "a") == pytest.approx(0.00025)


def test_missing_pair_rejected_at_construction():
    with pytest.raises(ValueError, match="missing"):
        LatencyMatrix.from_ms(["a", "b", "c"], {("a", "b"): 10.0})


def test_unknown_cluster_lookup_raises():
    lat = simple_latency()
    with pytest.raises(KeyError):
        lat.one_way("a", "zz")


def test_duplicate_cluster_names_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix.from_ms(["a", "a"], {})


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix(["a", "b"], {("a", "b"): -0.001})


def test_pricing_default_and_pair_override():
    pricing = EgressPricing(default_price_per_gb=0.02,
                            pair_prices_per_gb={("a", "b"): 0.08})
    assert pricing.per_gb("a", "b") == pytest.approx(0.08)
    assert pricing.per_gb("b", "a") == pytest.approx(0.08)   # symmetric
    assert pricing.per_gb("a", "c") == pytest.approx(0.02)


def test_intra_cluster_traffic_is_free():
    pricing = EgressPricing(default_price_per_gb=0.02)
    assert pricing.per_byte("a", "a") == 0.0


def test_transfer_delivers_after_one_way_delay():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    arrivals = []
    net.transfer("a", "b", 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.010)]


def test_cross_cluster_transfer_billed_to_source():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency(),
                     EgressPricing(default_price_per_gb=0.02))
    net.transfer("a", "b", GB, lambda: None)
    sim.run()
    assert net.ledger.total_bytes == GB
    assert net.ledger.total_cost == pytest.approx(0.02)
    assert net.ledger.cost_by_src == {"a": pytest.approx(0.02)}


def test_intra_cluster_transfer_not_metered():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "a", GB, lambda: None)
    sim.run()
    assert net.ledger.total_bytes == 0
    assert net.ledger.total_cost == 0.0


def test_ledger_accumulates_per_pair():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "b", 100, lambda: None)
    net.transfer("a", "b", 200, lambda: None)
    net.transfer("b", "a", 50, lambda: None)
    sim.run()
    assert net.ledger.bytes_by_pair[("a", "b")] == 300
    assert net.ledger.bytes_by_pair[("b", "a")] == 50


def test_ledger_reset():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "b", 100, lambda: None)
    sim.run()
    net.ledger.reset()
    assert net.ledger.total_bytes == 0
    assert net.ledger.bytes_by_pair == {}


def test_negative_bytes_rejected():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    with pytest.raises(ValueError):
        net.transfer("a", "b", -1, lambda: None)
