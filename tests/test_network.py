"""Tests for the WAN model: delays, egress metering, pricing, overrides."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (GB, EgressPricing, LatencyMatrix, WanNetwork)
from repro.sim.rng import RngRegistry


def simple_latency():
    return LatencyMatrix.from_ms(["a", "b", "c"], {
        ("a", "b"): 10.0, ("b", "c"): 20.0, ("a", "c"): 25.0,
    })


def test_one_way_symmetric():
    lat = simple_latency()
    assert lat.one_way("a", "b") == pytest.approx(0.010)
    assert lat.one_way("b", "a") == pytest.approx(0.010)


def test_rtt_is_twice_one_way():
    lat = simple_latency()
    assert lat.rtt("a", "c") == pytest.approx(0.050)


def test_intra_cluster_delay_default():
    lat = simple_latency()
    assert lat.one_way("a", "a") == pytest.approx(0.00025)


def test_missing_pair_rejected_at_construction():
    with pytest.raises(ValueError, match="missing"):
        LatencyMatrix.from_ms(["a", "b", "c"], {("a", "b"): 10.0})


def test_unknown_cluster_lookup_raises():
    lat = simple_latency()
    with pytest.raises(KeyError):
        lat.one_way("a", "zz")


def test_duplicate_cluster_names_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix.from_ms(["a", "a"], {})


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix(["a", "b"], {("a", "b"): -0.001})


def test_pricing_default_and_pair_override():
    pricing = EgressPricing(default_price_per_gb=0.02,
                            pair_prices_per_gb={("a", "b"): 0.08})
    assert pricing.per_gb("a", "b") == pytest.approx(0.08)
    assert pricing.per_gb("b", "a") == pytest.approx(0.08)   # symmetric
    assert pricing.per_gb("a", "c") == pytest.approx(0.02)


def test_intra_cluster_traffic_is_free():
    pricing = EgressPricing(default_price_per_gb=0.02)
    assert pricing.per_byte("a", "a") == 0.0


def test_transfer_delivers_after_one_way_delay():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    arrivals = []
    net.transfer("a", "b", 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.010)]


def test_cross_cluster_transfer_billed_to_source():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency(),
                     EgressPricing(default_price_per_gb=0.02))
    net.transfer("a", "b", GB, lambda: None)
    sim.run()
    assert net.ledger.total_bytes == GB
    assert net.ledger.total_cost == pytest.approx(0.02)
    assert net.ledger.cost_by_src == {"a": pytest.approx(0.02)}


def test_intra_cluster_transfer_not_metered():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "a", GB, lambda: None)
    sim.run()
    assert net.ledger.total_bytes == 0
    assert net.ledger.total_cost == 0.0


def test_ledger_accumulates_per_pair():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "b", 100, lambda: None)
    net.transfer("a", "b", 200, lambda: None)
    net.transfer("b", "a", 50, lambda: None)
    sim.run()
    assert net.ledger.bytes_by_pair[("a", "b")] == 300
    assert net.ledger.bytes_by_pair[("b", "a")] == 50


def test_ledger_reset():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    net.transfer("a", "b", 100, lambda: None)
    sim.run()
    net.ledger.reset()
    assert net.ledger.total_bytes == 0
    assert net.ledger.bytes_by_pair == {}


def test_negative_bytes_rejected():
    sim = Simulator()
    net = WanNetwork(sim, simple_latency())
    with pytest.raises(ValueError):
        net.transfer("a", "b", -1, lambda: None)


# --------------------------------------------------- construction validation


def test_self_pair_entry_rejected():
    with pytest.raises(ValueError, match="intra_cluster_delay"):
        LatencyMatrix(["a", "b"], {("a", "a"): 0.001, ("a", "b"): 0.010})


def test_unknown_cluster_in_pair_map_rejected():
    with pytest.raises(ValueError, match="unknown cluster"):
        LatencyMatrix(["a", "b"], {("a", "b"): 0.010, ("a", "zz"): 0.010})


def test_negative_intra_cluster_delay_rejected():
    with pytest.raises(ValueError):
        LatencyMatrix(["a", "b"], {("a", "b"): 0.010},
                      intra_cluster_delay=-0.001)


# ------------------------------------------------------------ WAN overrides


def test_override_extra_delay_and_multiplier_stack_in_order():
    lat = simple_latency()
    lat.apply_override("a", "b", multiplier=2.0)
    lat.apply_override("a", "b", extra_delay=0.005)
    # (0.010 * 2.0) + 0.005, applied in install order
    assert lat.one_way("a", "b") == pytest.approx(0.025)


def test_remove_override_restores_base_delay():
    lat = simple_latency()
    token = lat.apply_override("a", "b", multiplier=10.0)
    assert lat.one_way("a", "b") == pytest.approx(0.100)
    lat.remove_override(token)
    assert lat.one_way("a", "b") == pytest.approx(0.010)
    with pytest.raises(ValueError):
        lat.remove_override(token)        # already removed


def test_override_validation():
    lat = simple_latency()
    with pytest.raises(ValueError):
        lat.apply_override("a", "a", multiplier=2.0)      # intra-cluster
    with pytest.raises(KeyError):
        lat.apply_override("a", "zz", multiplier=2.0)     # unknown cluster
    with pytest.raises(ValueError):
        lat.apply_override("a", "b", extra_delay=-0.001)  # negative
    with pytest.raises(ValueError):
        lat.apply_override("a", "b", multiplier=-1.0)


def test_partition_blackholes_transfers_and_counts_them():
    sim = Simulator()
    lat = simple_latency()
    net = WanNetwork(sim, lat, EgressPricing(default_price_per_gb=0.02))
    token = lat.apply_override("a", "b", partition=True)
    assert lat.is_partitioned("a", "b") and lat.is_partitioned("b", "a")
    arrivals = []
    net.transfer("a", "b", GB, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == []                      # never delivered
    assert net.dropped_transfers == 1
    assert net.dropped_bytes == GB
    assert net.ledger.total_cost == 0.0        # blackholed bytes not billed
    lat.remove_override(token)
    net.transfer("a", "b", 100, lambda: arrivals.append(sim.now))
    sim.run()
    assert len(arrivals) == 1                  # link healed


def test_partition_leaves_other_pairs_untouched():
    sim = Simulator()
    lat = simple_latency()
    net = WanNetwork(sim, lat)
    lat.apply_override("a", "b", partition=True)
    arrivals = []
    net.transfer("a", "c", 100, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.025)]


def test_jitter_adds_bounded_noise_per_transfer():
    sim = Simulator()
    lat = simple_latency()
    net = WanNetwork(sim, lat)
    net.set_jitter("a", "b", 0.004, RngRegistry(7).stream("jitter"))
    arrivals = []
    for _ in range(20):
        net.transfer("a", "b", 100, lambda: arrivals.append(sim.now))
    sim.run()
    offsets = [t - 0.010 for t in arrivals]
    assert all(0.0 <= off <= 0.004 for off in offsets)
    assert len(set(arrivals)) > 1              # actually noisy
    net.clear_jitter("a", "b")
    start = sim.now
    arrivals.clear()
    net.transfer("a", "b", 100, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(start + 0.010)]   # base delay again
