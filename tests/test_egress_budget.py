"""Tests for the hard egress-budget constraint."""

import pytest

from repro.core.optimizer import SolverError, TEProblem, solve
from repro.sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                       two_region_latency)
from repro.sim.topology import ClusterSpec


def make_problem(egress_budget=None, west_rps=300.0):
    """The fig6c-like setting where latency optimum costs real egress."""
    app = anomaly_detection_app()
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"FR": 4, "MP": 5}),     # no DB
                  ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8})],
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): 100.0})
    return TEProblem.from_specs(app, deployment, demand,
                                egress_budget=egress_budget)


def test_unconstrained_baseline_cost():
    result = solve(make_problem())
    assert result.predicted_egress_cost_rate > 0


def test_budget_binds_and_is_respected():
    unconstrained = solve(make_problem())
    budget = unconstrained.predicted_egress_cost_rate * 0.5
    constrained = solve(make_problem(egress_budget=budget))
    assert constrained.predicted_egress_cost_rate <= budget * 1.001
    # paying less means accepting worse latency
    assert (constrained.predicted_mean_latency
            >= unconstrained.predicted_mean_latency - 1e-9)


def test_loose_budget_changes_nothing():
    unconstrained = solve(make_problem())
    loose = solve(make_problem(
        egress_budget=unconstrained.predicted_egress_cost_rate * 10))
    assert loose.objective == pytest.approx(unconstrained.objective,
                                            rel=1e-6)


def test_impossible_budget_infeasible():
    # West traffic MUST reach DB in east somehow: zero budget is infeasible
    with pytest.raises(SolverError):
        solve(make_problem(egress_budget=0.0))


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        make_problem(egress_budget=-1.0)


def test_budget_tightening_is_monotone():
    unconstrained = solve(make_problem())
    base_cost = unconstrained.predicted_egress_cost_rate
    latencies = []
    for fraction in (1.0, 0.7, 0.4):
        result = solve(make_problem(egress_budget=base_cost * fraction))
        latencies.append(result.predicted_mean_latency)
    assert latencies == sorted(latencies)   # tighter budget, more latency
