"""Tests for the HPA-style horizontal autoscaler."""

import pytest

from repro.sim.autoscaler import (AutoscalerConfig, HorizontalAutoscaler,
                                  ScalingEvent)
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.topology import ClusterSpec


def make_world(replicas=2, **config_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec("west", {"A": replicas}))
    defaults = dict(target_utilization=0.6, evaluation_period=5.0,
                    provisioning_delay=10.0, scale_down_stabilization=15.0)
    defaults.update(config_kwargs)
    autoscaler = HorizontalAutoscaler(sim, cluster,
                                      AutoscalerConfig(**defaults))
    autoscaler.start()
    return sim, cluster, autoscaler


def keep_busy(sim, pool, rate_jobs_per_s, work, until):
    """Open-loop job feed into the pool."""
    gap = 1.0 / rate_jobs_per_s

    def emit(t):
        if t >= until:
            return
        pool.submit(work, lambda now: None)
        sim.schedule_at(t + gap, emit, t + gap)

    sim.schedule_at(0.0, emit, 0.0)


def test_scale_up_on_sustained_overload():
    sim, cluster, autoscaler = make_world(replicas=2)
    pool = cluster.pool("A")
    # 2 replicas, offered work ~1.9 erlangs -> utilization ~0.95 > 0.6
    keep_busy(sim, pool, rate_jobs_per_s=190.0, work=0.010, until=60.0)
    sim.run(until=60.0)
    ups = [e for e in autoscaler.events if e.direction == "up"]
    assert ups, "autoscaler never scaled up"
    # first decision at t=5, applied after the 10s provisioning delay
    assert ups[0].time == pytest.approx(15.0, abs=0.2)
    assert pool.replicas > 2


def test_scale_up_waits_for_provisioning_delay():
    sim, cluster, autoscaler = make_world(replicas=2,
                                          provisioning_delay=20.0)
    keep_busy(sim, cluster.pool("A"), 190.0, 0.010, until=40.0)
    sim.run(until=24.0)
    assert not autoscaler.events            # decision at t=5, apply at t=25
    sim.run(until=26.0)
    assert autoscaler.events


def test_no_scaling_within_tolerance():
    sim, cluster, autoscaler = make_world(replicas=2, tolerance=0.15)
    # utilization ~0.6 = target: inside the band
    keep_busy(sim, cluster.pool("A"), 120.0, 0.010, until=60.0)
    sim.run(until=60.0)
    assert autoscaler.events == []


def test_scale_down_respects_stabilization():
    sim, cluster, autoscaler = make_world(
        replicas=8, scale_down_stabilization=20.0)
    # utilization ~0.1: far below target
    keep_busy(sim, cluster.pool("A"), 80.0, 0.010, until=120.0)
    sim.run(until=120.0)
    downs = [e for e in autoscaler.events if e.direction == "down"]
    assert downs
    # first shrink no earlier than first-below (t=5) + stabilization
    assert downs[0].time >= 25.0 - 0.2
    assert cluster.pool("A").replicas < 8


def test_min_replicas_floor():
    sim, cluster, autoscaler = make_world(
        replicas=4, min_replicas=2, scale_down_stabilization=5.0)
    sim.run(until=120.0)   # no load at all
    assert cluster.pool("A").replicas == 2


def test_max_replicas_ceiling():
    sim, cluster, autoscaler = make_world(replicas=2, max_replicas=3)
    keep_busy(sim, cluster.pool("A"), 500.0, 0.010, until=90.0)
    sim.run(until=90.0)
    assert cluster.pool("A").replicas == 3


def test_replica_seconds_accounting():
    sim, cluster, autoscaler = make_world(replicas=2)
    keep_busy(sim, cluster.pool("A"), 190.0, 0.010, until=60.0)
    sim.run(until=60.0)
    total = autoscaler.replica_seconds(horizon=60.0)
    # at least the baseline 2 replicas for 60s; more after scale-up
    assert total > 2 * 60.0
    flat = HorizontalAutoscaler(sim, Cluster(sim, ClusterSpec("e", {"A": 2})))
    assert flat.replica_seconds(60.0) == pytest.approx(120.0)


def test_start_twice_rejected():
    sim, cluster, autoscaler = make_world()
    with pytest.raises(RuntimeError):
        autoscaler.start()


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(target_utilization=1.5)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_replicas=5, max_replicas=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(evaluation_period=0)


def test_scaling_event_direction():
    up = ScalingEvent(1.0, "A", "west", 2, 4)
    down = ScalingEvent(1.0, "A", "west", 4, 2)
    assert up.direction == "up"
    assert down.direction == "down"


def test_lifetime_busy_seconds_monotone():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec("west", {"A": 2}))
    pool = cluster.pool("A")
    pool.submit(1.0, lambda t: None)
    sim.run()
    first = pool.lifetime_busy_seconds
    assert first == pytest.approx(1.0)
    pool.harvest()   # telemetry reset must not affect the lifetime counter
    pool.submit(0.5, lambda t: None)
    sim.run()
    assert pool.lifetime_busy_seconds == pytest.approx(1.5)
