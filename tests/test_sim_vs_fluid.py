"""Cross-validation: the simulator converges to the fluid model.

These tests tie the two halves of the repo together: the discrete-event
simulator (with real queueing and sampling noise) and the analytic fluid
evaluator must agree on means for stable scenarios. Disagreement indicates a
bug in one of them — this is the strongest correctness check in the suite.
"""

import pytest

from repro.analysis.fluid import evaluate_rules
from repro.core.controller.global_controller import GlobalController
from repro.core.rules import RoutingRule, RuleSet
from repro.mesh.routing_table import WILDCARD_CLASS
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation


def setup(replicas=5):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    return app, deployment


def simulate(app, deployment, demand, rules, duration=60.0, seed=11):
    sim = MeshSimulation(app, deployment, seed=seed)
    rules.apply(sim.table)
    sim.run(demand, duration=duration)
    lats = sim.telemetry.latencies(after=duration / 6)
    mean = sum(lats) / len(lats)
    egress_rate = sim.network.ledger.total_cost / duration
    return mean, egress_rate


def split_rules(app, fraction_east):
    rules = RuleSet()
    for service in app.services():
        for cluster in ("west", "east"):
            if cluster == "west" and service == "S1":
                rules.add(RoutingRule.make(
                    service, WILDCARD_CLASS, cluster,
                    {"west": 1 - fraction_east, "east": fraction_east}))
            else:
                rules.add(RoutingRule.make(service, WILDCARD_CLASS, cluster,
                                           {cluster: 1.0}))
    return rules


@pytest.mark.parametrize("west_rps,frac_east", [
    (200.0, 0.0),       # light, all local
    (400.0, 0.0),       # moderate, all local
    (400.0, 0.3),       # moderate with a WAN split
])
def test_sim_mean_matches_fluid(west_rps, frac_east):
    app, deployment = setup()
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): 100.0})
    rules = split_rules(app, frac_east)
    prediction = evaluate_rules(app, deployment, demand, rules)
    measured_mean, measured_egress = simulate(app, deployment, demand, rules)
    assert measured_mean == pytest.approx(prediction.mean_latency, rel=0.08)
    assert measured_egress == pytest.approx(prediction.egress_cost_rate,
                                            rel=0.10, abs=1e-9)


def test_sim_matches_optimizer_prediction_under_slate_rules():
    app, deployment = setup()
    demand = DemandMatrix({("default", "west"): 650.0,
                           ("default", "east"): 100.0})
    result = GlobalController.oracle(app, deployment, demand)
    measured_mean, _ = simulate(app, deployment, demand, result.rules(),
                                duration=60.0)
    # the optimizer's own latency prediction should be realised by the
    # data plane within sampling tolerance
    assert measured_mean == pytest.approx(result.predicted_mean_latency,
                                          rel=0.15)


def test_fluid_agrees_with_optimizer_on_slate_rules():
    app, deployment = setup()
    demand = DemandMatrix({("default", "west"): 650.0,
                           ("default", "east"): 100.0})
    result = GlobalController.oracle(app, deployment, demand)
    prediction = evaluate_rules(app, deployment, demand, result.rules())
    # two independent evaluations of the same routing plan
    assert prediction.mean_latency == pytest.approx(
        result.predicted_mean_latency, rel=0.05)
    assert prediction.egress_cost_rate == pytest.approx(
        result.predicted_egress_cost_rate, rel=0.05, abs=1e-12)
