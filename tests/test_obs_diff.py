"""Run-diff regression engine: flattening, tolerance bands, CLI gating."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much
from repro.obs import (DiffConfig, Observability, ObservabilityConfig,
                       diff_files, diff_runs, flatten_artifact, load_artifact,
                       write_timeseries_json)


# -------------------------------------------------------------- config

def test_direction_rules():
    config = DiffConfig()
    assert config.direction_for("events_per_sec_off") == "higher"
    assert config.direction_for("request_latency_p99:mean") == "lower"
    assert config.direction_for("wan_egress_cost_dollars_total:last") == "lower"
    assert config.direction_for("routing_rules:last") == "both"


def test_tolerance_overrides_and_ignores():
    config = DiffConfig(rel_tolerance=0.05,
                        key_tolerances=(("events_per_sec*", 0.25),))
    assert config.tolerance_for("events_per_sec_off") == 0.25
    assert config.tolerance_for("anything_else") == 0.05
    assert config.ignores("schema_version")
    assert config.ignores("sweep_wall_time_seconds")
    assert not config.ignores("request_latency_p50:last")


# ---------------------------------------------------------- comparison

def test_higher_is_better_drop_is_regression():
    report = diff_runs({"events_per_sec_x": 100.0},
                       {"events_per_sec_x": 80.0})
    assert report.has_regressions
    delta = report.regressions()[0]
    assert delta.rel_delta == pytest.approx(-0.2)
    # the opposite drift — a speedup — is never a regression
    assert not diff_runs({"events_per_sec_x": 100.0},
                         {"events_per_sec_x": 200.0}).has_regressions


def test_lower_is_better_rise_is_regression():
    assert diff_runs({"p99_latency": 0.10},
                     {"p99_latency": 0.12}).has_regressions
    assert not diff_runs({"p99_latency": 0.10},
                         {"p99_latency": 0.05}).has_regressions


def test_directionless_keys_regress_on_any_drift():
    base = {"routing_rules:last": 6.0}
    assert diff_runs(base, {"routing_rules:last": 7.0}).has_regressions
    assert diff_runs(base, {"routing_rules:last": 5.0}).has_regressions
    assert not diff_runs(base, {"routing_rules:last": 6.0}).has_regressions


def test_tolerance_band_is_relative_plus_absolute():
    config = DiffConfig(rel_tolerance=0.10)
    assert not diff_runs({"p99_latency": 1.0}, {"p99_latency": 1.09},
                         config).has_regressions
    assert diff_runs({"p99_latency": 1.0}, {"p99_latency": 1.11},
                     config).has_regressions
    # zero baseline: only the absolute slack applies
    config = DiffConfig(abs_tolerance=0.5)
    assert not diff_runs({"failed": 0.0}, {"failed": 0.4},
                         config).has_regressions
    assert diff_runs({"failed": 0.0}, {"failed": 0.6},
                     config).has_regressions


def test_missing_key_semantics():
    base = {"requests_completed_total:last": 10.0}
    report = diff_runs(base, {})
    assert report.has_regressions            # baseline key vanished
    assert report.deltas[0].candidate is None
    relaxed = diff_runs(base, {}, DiffConfig(fail_on_missing=False))
    assert not relaxed.has_regressions
    # candidate-only keys are informational, never failures
    grown = diff_runs({}, {"new_metric": 1.0})
    assert not grown.has_regressions and grown.deltas[0].baseline is None


def test_key_tolerance_override_loosens_one_pattern():
    config = DiffConfig(rel_tolerance=0.05,
                        key_tolerances=(("events_per_sec*", 0.5),))
    flat_base = {"events_per_sec_x": 100.0, "p99_latency": 1.0}
    flat_cand = {"events_per_sec_x": 60.0, "p99_latency": 1.5}
    report = diff_runs(flat_base, flat_cand, config)
    keys = [delta.key for delta in report.regressions()]
    assert keys == ["p99_latency"]           # 40% drop sits inside 50% band


def test_report_render_and_as_dict():
    report = diff_runs({"events_per_sec_x": 100.0, "steady": 5.0},
                       {"events_per_sec_x": 80.0, "steady": 5.0},
                       baseline_name="a.json", candidate_name="b.json")
    text = report.render()
    assert "a.json -> b.json" in text
    assert "REGRESSION" in text and "-20.0%" in text
    assert "steady" not in text              # unchanged keys hidden by default
    assert "steady" in report.render(all_keys=True)
    payload = report.as_dict()
    assert payload["compared"] == 2 and payload["regressions"] == 1


# ---------------------------------------------------------- flattening

def test_flatten_bench_json():
    flat = flatten_artifact({"events_per_sec_off": 86699.9,
                             "schema_version": 1, "label": "x"})
    assert flat == {"events_per_sec_off": 86699.9, "schema_version": 1.0}


def test_flatten_metrics_snapshot():
    payload = {
        "requests_total": {"kind": "counter", "help": "h", "series": [
            {"labels": {"cluster": "west"}, "value": 10}]},
        "latency_seconds": {"kind": "histogram", "help": "h", "series": [
            {"labels": {}, "count": 4, "sum": 2.0, "mean": 0.5,
             "buckets": [[0.1, 1], [0.5, 3]]}]},
    }
    flat = flatten_artifact(payload)
    assert flat["requests_total{cluster=west}"] == 10.0
    assert flat["latency_seconds:count"] == 4.0
    assert flat["latency_seconds:mean"] == 0.5
    assert "latency_seconds:buckets" not in flat


def test_flatten_timeseries_snapshot():
    payload = {"scrape_count": 3, "series": [
        {"name": "depth", "labels": {"cluster": "west"},
         "points": [[1.0, 2.0], [2.0, 6.0], [3.0, 4.0]]},
        {"name": "empty", "labels": {}, "points": []},
    ]}
    flat = flatten_artifact(payload)
    assert flat["depth{cluster=west}:last"] == 4.0
    assert flat["depth{cluster=west}:mean"] == pytest.approx(4.0)
    assert flat["depth{cluster=west}:max"] == 6.0
    assert not any(key.startswith("empty") for key in flat)


def test_flatten_decision_and_alert_jsonl():
    decisions = [{"outcome": "solved", "weight_churn": 0.5,
                  "rules_changed": 2},
                 {"outcome": "replayed", "weight_churn": 0.0,
                  "rules_changed": 0}]
    flat = flatten_artifact(decisions)
    assert flat["decisions:epochs"] == 2.0
    assert flat["decisions:solved"] == 1.0
    assert flat["decisions:weight_churn"] == 0.5
    alerts = [{"fired_at": 42.0, "resolved_at": 112.0},
              {"fired_at": 120.0, "resolved_at": None}]
    flat = flatten_artifact(alerts)
    assert flat["alerts:fired"] == 2.0
    assert flat["alerts:resolved"] == 1.0
    assert flat["alerts:firing_seconds"] == 70.0


def test_flatten_rejects_unknown_payloads():
    with pytest.raises(ValueError):
        flatten_artifact([{"mystery": 1}])
    with pytest.raises(ValueError):
        flatten_artifact({"only": "strings"})
    with pytest.raises(ValueError):
        flatten_artifact(3.14)


def test_load_artifact_json_and_jsonl(tmp_path):
    json_path = tmp_path / "bench.json"
    json_path.write_text(json.dumps({"events_per_sec_off": 10.0}))
    assert load_artifact(json_path) == {"events_per_sec_off": 10.0}
    jsonl_path = tmp_path / "alerts.jsonl"
    jsonl_path.write_text('{"fired_at": 1.0, "resolved_at": 2.0}\n')
    assert load_artifact(jsonl_path)["alerts:fired"] == 1.0
    report = diff_files(json_path, json_path)
    assert not report.has_regressions


# ------------------------------------------------------------------ CLI

def _write_bench(path, events):
    path.write_text(json.dumps({"events_per_sec_off": events,
                                "schema_version": 1}))


def test_cli_diff_exit_codes(tmp_path, capsys):
    base, cand = tmp_path / "base.json", tmp_path / "cand.json"
    _write_bench(base, 100.0)
    _write_bench(cand, 98.0)
    assert main(["obs", "diff", str(base), str(cand)]) == 0
    _write_bench(cand, 50.0)
    assert main(["obs", "diff", str(base), str(cand)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "regressions=1" in out


def test_cli_diff_tolerance_flag(tmp_path):
    base, cand = tmp_path / "base.json", tmp_path / "cand.json"
    _write_bench(base, 100.0)
    _write_bench(cand, 80.0)
    assert main(["obs", "diff", str(base), str(cand)]) == 1
    assert main(["obs", "diff", str(base), str(cand),
                 "--tolerance", "events_per_sec*=0.25"]) == 0
    assert main(["obs", "diff", str(base), str(cand),
                 "--rel-tolerance", "0.3"]) == 0


def test_cli_diff_allow_missing_and_report(tmp_path, capsys):
    base, cand = tmp_path / "base.json", tmp_path / "cand.json"
    base.write_text(json.dumps({"events_per_sec_off": 100.0,
                                "events_per_sec_extra": 5.0}))
    _write_bench(cand, 100.0)
    assert main(["obs", "diff", str(base), str(cand)]) == 1
    report_path = tmp_path / "report.json"
    assert main(["obs", "diff", str(base), str(cand), "--allow-missing",
                 "--report", str(report_path)]) == 0
    capsys.readouterr()
    payload = json.loads(report_path.read_text())
    assert payload["regressions"] == 0


# -------------------------------------------- the acceptance-bar scenario

def test_diff_flags_injected_wan_latency(tmp_path, capsys):
    """ISSUE acceptance: a run with extra injected WAN latency must make
    ``repro obs diff`` exit non-zero against the clean baseline."""
    snapshots = []
    for one_way_ms in (25.0, 80.0):
        setup = fig6a_how_much(one_way_ms=one_way_ms, duration=8.0)
        obs = Observability(ObservabilityConfig(timeseries=True))
        run_policy(setup.scenario, setup.slate, observability=obs)
        path = tmp_path / f"wan_{one_way_ms:g}.json"
        write_timeseries_json(obs.timeseries, path)
        snapshots.append(str(path))
    baseline, slow = snapshots
    assert main(["obs", "diff", baseline, baseline]) == 0   # self-diff clean
    assert main(["obs", "diff", baseline, slow]) == 1
    out = capsys.readouterr().out
    assert "request_latency" in out and "REGRESSION" in out
