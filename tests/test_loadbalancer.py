"""Tests for intra-cluster load balancers and the weighted selector."""

from collections import Counter
from dataclasses import dataclass

import numpy as np
import pytest

from repro.mesh.loadbalancer import (ConsistentHashBalancer,
                                     LeastOutstandingBalancer,
                                     RoundRobinBalancer,
                                     WeightedRandomSelector)


@dataclass
class FakeEndpoint:
    name: str
    outstanding: int = 0


def endpoints(n=3):
    return [FakeEndpoint(f"e{i}") for i in range(n)]


class TestRoundRobin:
    def test_cycles_through_endpoints(self):
        lb = RoundRobinBalancer()
        eps = endpoints(3)
        picks = [lb.pick(eps).name for _ in range(6)]
        assert picks == ["e0", "e1", "e2", "e0", "e1", "e2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBalancer().pick([])


class TestLeastOutstanding:
    def test_picks_least_loaded(self):
        eps = endpoints(3)
        eps[0].outstanding = 5
        eps[1].outstanding = 1
        eps[2].outstanding = 3
        assert LeastOutstandingBalancer().pick(eps).name == "e1"

    def test_tie_breaks_by_position(self):
        eps = endpoints(3)
        assert LeastOutstandingBalancer().pick(eps).name == "e0"


class TestConsistentHash:
    def test_same_key_same_endpoint(self):
        lb = ConsistentHashBalancer()
        eps = endpoints(4)
        assert lb.pick(eps, key="user-42") is lb.pick(eps, key="user-42")

    def test_requires_key(self):
        with pytest.raises(ValueError):
            ConsistentHashBalancer().pick(endpoints(), key=None)

    def test_removal_remaps_only_some_keys(self):
        lb = ConsistentHashBalancer(vnodes=128)
        eps = endpoints(5)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: lb.pick(eps, key=k).name for k in keys}
        survivors = eps[:-1]   # remove e4
        after = {k: lb.pick(survivors, key=k).name for k in keys}
        moved = sum(1 for k in keys
                    if before[k] != after[k] and before[k] != "e4")
        # keys not on the removed endpoint should overwhelmingly stay put
        assert moved <= len(keys) * 0.05

    def test_distribution_roughly_uniform(self):
        lb = ConsistentHashBalancer(vnodes=256)
        eps = endpoints(4)
        counts = Counter(lb.pick(eps, key=f"k{i}").name for i in range(4000))
        for name in ("e0", "e1", "e2", "e3"):
            assert 600 <= counts[name] <= 1400


class TestWeightedRandom:
    def test_single_choice_short_circuit(self):
        selector = WeightedRandomSelector(np.random.default_rng(0))
        assert selector.pick({"only": 0.2}) == "only"

    def test_empirical_split_matches_weights(self):
        selector = WeightedRandomSelector(np.random.default_rng(1))
        counts = Counter(selector.pick({"a": 0.7, "b": 0.3})
                         for _ in range(10000))
        assert counts["a"] / 10000 == pytest.approx(0.7, abs=0.02)

    def test_unnormalised_weights_ok(self):
        selector = WeightedRandomSelector(np.random.default_rng(2))
        counts = Counter(selector.pick({"a": 7, "b": 3})
                         for _ in range(10000))
        assert counts["a"] / 10000 == pytest.approx(0.7, abs=0.02)

    def test_empty_rejected(self):
        selector = WeightedRandomSelector(np.random.default_rng(0))
        with pytest.raises(ValueError):
            selector.pick({})

    def test_zero_total_rejected(self):
        selector = WeightedRandomSelector(np.random.default_rng(0))
        with pytest.raises(ValueError):
            selector.pick({"a": 0.0})

    def test_deterministic_given_seed(self):
        picks1 = [WeightedRandomSelector(np.random.default_rng(7)).pick(
            {"a": 1, "b": 1}) for _ in range(1)]
        picks2 = [WeightedRandomSelector(np.random.default_rng(7)).pick(
            {"a": 1, "b": 1}) for _ in range(1)]
        assert picks1 == picks2
