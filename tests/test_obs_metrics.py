"""Metrics registry semantics, exports, and sim/controller collectors."""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.obs import (DEFAULT_LATENCY_BUCKETS, DEFAULT_MAX_LABEL_SETS,
                       MetricsRegistry, Observability, ObservabilityConfig)
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much


# ------------------------------------------------------------ registry

def test_counter_accumulates_per_labels():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "help text")
    counter.inc(2, cluster="west")
    counter.inc(3, cluster="west")
    counter.inc(1, cluster="east")
    assert counter.value(cluster="west") == 5.0
    assert counter.value(cluster="east") == 1.0
    assert counter.value(cluster="south") == 0.0
    with pytest.raises(ValueError):
        counter.inc(-1, cluster="west")


def test_gauge_sets_not_accumulates():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(4, service="A")
    gauge.set(2, service="A")
    assert gauge.value(service="A") == 2.0


def test_histogram_buckets_and_mean():
    histogram = MetricsRegistry().histogram(
        "lat", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        histogram.observe(value, cls="default")
    state = histogram.state(cls="default")
    assert state.count == 5
    assert state.total == pytest.approx(5.605)
    assert state.counts == [1, 2, 1, 1]          # per-bucket + overflow
    assert state.cumulative() == [1, 3, 4, 5]    # prometheus cumulative
    assert state.mean == pytest.approx(5.605 / 5)
    assert histogram.state(cls="other") is None


def test_registry_idempotent_and_kind_checked():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        MetricsRegistry().counter("bad name")


def test_default_buckets_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ------------------------------------------------------------- exports

def build_small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("reqs_total", "requests").inc(7, cluster="west")
    registry.gauge("queue_depth").set(3, cluster="west", service="A")
    registry.histogram("lat_seconds", "latency",
                       buckets=(0.1, 1.0)).observe(0.05, cls="default")
    return registry


def test_snapshot_is_json_serializable():
    snapshot = build_small_registry().snapshot()
    json.dumps(snapshot)
    assert snapshot["reqs_total"]["kind"] == "counter"
    assert snapshot["reqs_total"]["series"][0] == {
        "labels": {"cluster": "west"}, "value": 7.0}
    histo = snapshot["lat_seconds"]["series"][0]
    assert histo["count"] == 1 and histo["sum"] == pytest.approx(0.05)
    assert histo["buckets"][-1][0] == "+Inf"


def test_prometheus_text_format():
    text = build_small_registry().to_prometheus()
    assert "# HELP reqs_total requests" in text
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{cluster="west"} 7.0' in text
    assert 'queue_depth{cluster="west",service="A"} 3.0' in text
    # cumulative buckets including the +Inf terminal
    assert 'lat_seconds_bucket{cls="default",le="0.1"} 1' in text
    assert 'lat_seconds_bucket{cls="default",le="+Inf"} 1' in text
    assert 'lat_seconds_sum{cls="default"} 0.05' in text
    assert 'lat_seconds_count{cls="default"} 1' in text
    assert text.endswith("\n")


def test_prometheus_matches_golden_file():
    """The exact exposition bytes are pinned: HELP/TYPE headers, label
    ordering, cumulative ``_bucket``/``_sum``/``_count`` series."""
    golden = Path(__file__).parent / "golden" / "metrics.prom"
    assert build_small_registry().to_prometheus() == golden.read_text()


def build_optimizer_registry() -> MetricsRegistry:
    """Collect controller metrics from a stub with fixed counters.

    Wall-clock totals are hand-picked constants, so the exposition bytes
    are stable enough to pin in a golden file.
    """
    from types import SimpleNamespace

    from repro.obs.collect import collect_controller_metrics

    epoch_solver = SimpleNamespace(
        builds=6, warm_builds=4, build_seconds=0.25,
        solves=4, warm_solves=3, warm_rejects=1, replays=2,
        solve_seconds=0.5,
        structure_cache=SimpleNamespace(hits=4, misses=2, hit_rate=2 / 3),
        last_candidate_stats={"paths": 12, "groups": 4,
                              "k": 3, "max_group": 3},
    )
    controller = SimpleNamespace(
        epochs_observed=6,
        solver_cache=SimpleNamespace(hits=2, misses=4, hit_rate=1 / 3),
        epoch_solver=epoch_solver,
        last_result=None,
    )
    registry = MetricsRegistry()
    collect_controller_metrics(registry, controller)
    return registry


def test_optimizer_counters_cover_reuse_ladder():
    registry = build_optimizer_registry()
    # replay / warm / cold tiers are all exported, and cold is derived
    # (solves - warm solves) in exactly one place
    assert registry.counter("optimizer_replays_total").value() == 2.0
    assert registry.counter("optimizer_warm_solves_total").value() == 3.0
    assert registry.counter("optimizer_cold_solves_total").value() == 1.0
    assert registry.counter(
        "optimizer_certificate_accepted_total").value() == 3.0
    assert registry.counter(
        "optimizer_certificate_rejected_total").value() == 1.0
    assert registry.gauge("optimizer_path_candidates").value() == 12.0
    assert registry.gauge("optimizer_path_candidate_groups").value() == 4.0


def test_optimizer_metrics_match_golden_file():
    """Pin the optimizer-counter exposition: names, HELP text, values."""
    golden = Path(__file__).parent / "golden" / "optimizer_metrics.prom"
    assert build_optimizer_registry().to_prometheus() == golden.read_text()


def test_arc_formulation_skips_candidate_gauges():
    from types import SimpleNamespace

    from repro.obs.collect import collect_controller_metrics

    controller = SimpleNamespace(
        epochs_observed=1, solver_cache=None,
        epoch_solver=SimpleNamespace(
            builds=1, warm_builds=0, build_seconds=0.0, solves=1,
            warm_solves=0, warm_rejects=0, replays=0, solve_seconds=0.0,
            structure_cache=None, last_candidate_stats=None),
        last_result=None)
    registry = MetricsRegistry()
    collect_controller_metrics(registry, controller)
    assert "optimizer_path_candidates" not in registry.snapshot()


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("odd_total").inc(1, path='a\\b"c\nd')
    text = registry.to_prometheus()
    assert 'odd_total{path="a\\\\b\\"c\\nd"} 1.0' in text
    assert "\n\n" not in text                # the raw newline never leaks


# --------------------------------------------------- cardinality guard

def test_cardinality_guard_folds_overflow_series():
    registry = MetricsRegistry(max_label_sets=3)
    counter = registry.counter("wide_total")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for index in range(5):
            counter.inc(1, request_id=str(index))
    assert [w.category for w in caught] == [RuntimeWarning]   # warned once
    assert "max_label_sets=3" in str(caught[0].message)
    assert counter.series_count() == 4       # 3 admitted + the overflow bin
    assert counter.dropped_label_sets == 2
    assert counter.value(overflow="true") == 2.0
    # existing label-sets keep accumulating normally past the cap
    counter.inc(1, request_id="0")
    assert counter.value(request_id="0") == 2.0
    assert counter.dropped_label_sets == 2


def test_cardinality_guard_applies_to_histograms_and_snapshot():
    registry = MetricsRegistry(max_label_sets=1)
    histogram = registry.histogram("h", buckets=(1.0,))
    histogram.observe(0.5, cls="a")
    with pytest.warns(RuntimeWarning):
        histogram.observe(0.7, cls="b")
        histogram.observe(0.9, cls="c")
    assert histogram.state(overflow="true").count == 2
    snapshot = registry.snapshot()
    assert snapshot["h"]["dropped_label_sets"] == 2
    # untripped metrics don't carry the key at all
    assert "dropped_label_sets" not in build_small_registry().snapshot()[
        "reqs_total"]


def test_cardinality_cap_configurable_and_unlimited():
    assert MetricsRegistry().max_label_sets == DEFAULT_MAX_LABEL_SETS
    with pytest.raises(ValueError):
        MetricsRegistry(max_label_sets=0)
    unlimited = MetricsRegistry(max_label_sets=None)
    counter = unlimited.counter("c")
    for index in range(DEFAULT_MAX_LABEL_SETS + 8):
        counter.inc(1, i=str(index))
    assert counter.series_count() == DEFAULT_MAX_LABEL_SETS + 8
    assert counter.dropped_label_sets == 0


# ----------------------------------------------------------- collectors

@pytest.fixture(scope="module")
def collected_registry():
    import dataclasses

    from repro import GlobalControllerConfig, SlatePolicy

    obs = Observability(ObservabilityConfig(metrics=True, profiling=True))
    setup = fig6a_how_much(duration=10.0)
    # an adaptive policy, so the controller collectors have state to read
    scenario = dataclasses.replace(setup.scenario, epoch=2.0)
    policy = SlatePolicy(GlobalControllerConfig(rho_max=0.95), adaptive=True)
    run_policy(scenario, policy, observability=obs)
    return obs.metrics


def test_collect_simulation_metrics(collected_registry):
    registry = collected_registry
    assert registry.counter("engine_events_total").value() > 0
    admitted = registry.counter("gateway_admitted_total")
    completed = registry.counter("gateway_completed_total")
    total_admitted = sum(admitted.value(**dict(key))
                         for key in admitted.labels())
    total_completed = sum(completed.value(**dict(key))
                          for key in completed.labels())
    assert 0 < total_completed <= total_admitted
    # per-(service, cluster) pool gauges exist and carry both labels
    replicas = registry.gauge("pool_replicas")
    assert replicas.series_count() > 0
    assert all({"service", "cluster"} == {name for name, _ in key}
               for key in replicas.labels())
    state = registry.histogram("request_latency_seconds").state(
        traffic_class="default")
    assert state is not None and state.count > 0


def test_collect_controller_metrics(collected_registry):
    registry = collected_registry
    assert registry.gauge("solver_objective").value() != 0.0
    assert registry.gauge("solver_variables").value() > 0
    assert registry.gauge("solver_constraints").value() > 0


def test_collect_profiler_metrics(collected_registry):
    runs = collected_registry.counter("control_plane_section_runs_total")
    assert runs.value(section="initial-plan") >= 1
