"""Metrics registry semantics, exports, and sim/controller collectors."""

from __future__ import annotations

import json

import pytest

from repro.obs import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry,
                       Observability, ObservabilityConfig)
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much


# ------------------------------------------------------------ registry

def test_counter_accumulates_per_labels():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "help text")
    counter.inc(2, cluster="west")
    counter.inc(3, cluster="west")
    counter.inc(1, cluster="east")
    assert counter.value(cluster="west") == 5.0
    assert counter.value(cluster="east") == 1.0
    assert counter.value(cluster="south") == 0.0
    with pytest.raises(ValueError):
        counter.inc(-1, cluster="west")


def test_gauge_sets_not_accumulates():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(4, service="A")
    gauge.set(2, service="A")
    assert gauge.value(service="A") == 2.0


def test_histogram_buckets_and_mean():
    histogram = MetricsRegistry().histogram(
        "lat", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        histogram.observe(value, cls="default")
    state = histogram.state(cls="default")
    assert state.count == 5
    assert state.total == pytest.approx(5.605)
    assert state.counts == [1, 2, 1, 1]          # per-bucket + overflow
    assert state.cumulative() == [1, 3, 4, 5]    # prometheus cumulative
    assert state.mean == pytest.approx(5.605 / 5)
    assert histogram.state(cls="other") is None


def test_registry_idempotent_and_kind_checked():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        MetricsRegistry().counter("bad name")


def test_default_buckets_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ------------------------------------------------------------- exports

def build_small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("reqs_total", "requests").inc(7, cluster="west")
    registry.gauge("queue_depth").set(3, cluster="west", service="A")
    registry.histogram("lat_seconds", "latency",
                       buckets=(0.1, 1.0)).observe(0.05, cls="default")
    return registry


def test_snapshot_is_json_serializable():
    snapshot = build_small_registry().snapshot()
    json.dumps(snapshot)
    assert snapshot["reqs_total"]["kind"] == "counter"
    assert snapshot["reqs_total"]["series"][0] == {
        "labels": {"cluster": "west"}, "value": 7.0}
    histo = snapshot["lat_seconds"]["series"][0]
    assert histo["count"] == 1 and histo["sum"] == pytest.approx(0.05)
    assert histo["buckets"][-1][0] == "+Inf"


def test_prometheus_text_format():
    text = build_small_registry().to_prometheus()
    assert "# HELP reqs_total requests" in text
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{cluster="west"} 7.0' in text
    assert 'queue_depth{cluster="west",service="A"} 3.0' in text
    # cumulative buckets including the +Inf terminal
    assert 'lat_seconds_bucket{cls="default",le="0.1"} 1' in text
    assert 'lat_seconds_bucket{cls="default",le="+Inf"} 1' in text
    assert 'lat_seconds_sum{cls="default"} 0.05' in text
    assert 'lat_seconds_count{cls="default"} 1' in text
    assert text.endswith("\n")


# ----------------------------------------------------------- collectors

@pytest.fixture(scope="module")
def collected_registry():
    import dataclasses

    from repro import GlobalControllerConfig, SlatePolicy

    obs = Observability(ObservabilityConfig(metrics=True, profiling=True))
    setup = fig6a_how_much(duration=10.0)
    # an adaptive policy, so the controller collectors have state to read
    scenario = dataclasses.replace(setup.scenario, epoch=2.0)
    policy = SlatePolicy(GlobalControllerConfig(rho_max=0.95), adaptive=True)
    run_policy(scenario, policy, observability=obs)
    return obs.metrics


def test_collect_simulation_metrics(collected_registry):
    registry = collected_registry
    assert registry.counter("engine_events_total").value() > 0
    admitted = registry.counter("gateway_admitted_total")
    completed = registry.counter("gateway_completed_total")
    total_admitted = sum(admitted.value(**dict(key))
                         for key in admitted.labels())
    total_completed = sum(completed.value(**dict(key))
                          for key in completed.labels())
    assert 0 < total_completed <= total_admitted
    # per-(service, cluster) pool gauges exist and carry both labels
    replicas = registry.gauge("pool_replicas")
    assert replicas.series_count() > 0
    assert all({"service", "cluster"} == {name for name, _ in key}
               for key in replicas.labels())
    state = registry.histogram("request_latency_seconds").state(
        traffic_class="default")
    assert state is not None and state.count > 0


def test_collect_controller_metrics(collected_registry):
    registry = collected_registry
    assert registry.gauge("solver_objective").value() != 0.0
    assert registry.gauge("solver_variables").value() > 0
    assert registry.gauge("solver_constraints").value() > 0


def test_collect_profiler_metrics(collected_registry):
    runs = collected_registry.counter("control_plane_section_runs_total")
    assert runs.value(section="initial-plan") >= 1
