"""Tests for demand forecasting and predictive planning."""

import pytest

from repro.core.controller.forecast import HoltForecaster
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.mesh.telemetry import ClusterEpochReport
from repro.sim import (DeploymentSpec, linear_chain_app, two_region_latency)


class TestHoltForecaster:
    def test_first_observation_is_the_forecast(self):
        forecaster = HoltForecaster()
        forecaster.observe("k", 100.0)
        assert forecaster.forecast("k") == pytest.approx(100.0)

    def test_linear_ramp_extrapolated(self):
        forecaster = HoltForecaster(alpha=0.8, beta=0.5)
        for value in range(100, 200, 10):   # +10 per step
            forecaster.observe("k", float(value))
        one_ahead = forecaster.forecast("k", steps_ahead=1)
        # last observation 190; the trend should push the forecast beyond it
        assert one_ahead > 192.0
        assert forecaster.forecast("k", 2) > one_ahead

    def test_constant_series_no_trend(self):
        forecaster = HoltForecaster()
        for _ in range(10):
            forecaster.observe("k", 50.0)
        assert forecaster.forecast("k", 5) == pytest.approx(50.0)

    def test_forecast_clamped_at_zero(self):
        forecaster = HoltForecaster(alpha=0.9, beta=0.9)
        for value in (100.0, 60.0, 20.0, 1.0):
            forecaster.observe("k", value)
        assert forecaster.forecast("k", 10) == 0.0

    def test_unknown_key(self):
        assert HoltForecaster().forecast("nope") == 0.0
        assert not HoltForecaster().known("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(beta=1.5)
        forecaster = HoltForecaster()
        with pytest.raises(ValueError):
            forecaster.observe("k", -1.0)
        with pytest.raises(ValueError):
            forecaster.forecast("k", steps_ahead=-1)

    def test_independent_series(self):
        forecaster = HoltForecaster()
        forecaster.observe("a", 10.0)
        forecaster.observe("b", 99.0)
        assert forecaster.forecast("a") == pytest.approx(10.0)
        assert forecaster.forecast("b") == pytest.approx(99.0)
        assert len(forecaster) == 2


def make_report(cluster, rps, duration=2.0):
    return ClusterEpochReport(
        cluster=cluster, start_time=0.0, duration=duration,
        ingress_counts={"default": int(rps * duration)})


class TestPredictiveController:
    def make(self, forecast):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        config = GlobalControllerConfig(forecast_demand=forecast,
                                        learn_profiles=False,
                                        demand_alpha=0.5)
        return GlobalController(app, deployment, config)

    def test_predictive_leads_reactive_on_a_ramp(self):
        reactive = self.make(forecast=False)
        predictive = self.make(forecast=True)
        for rps in (100.0, 200.0, 300.0, 400.0):
            for controller in (reactive, predictive):
                controller.observe([make_report("west", rps)])
        # reactive EWMA lags below the latest observation; the forecast
        # extrapolates beyond it
        assert reactive.demand_estimate("default", "west") < 400.0
        assert predictive.demand_estimate("default", "west") > 400.0

    def test_infeasible_forecast_degrades_gracefully(self):
        controller = self.make(forecast=True)
        # a ramp whose forecast exceeds the 950-rps global service capacity
        for rps in (400.0, 700.0, 1000.0, 1300.0):
            controller.observe([make_report("west", rps)])
        assert controller.demand_estimate("default", "west") > 1000.0
        result = controller.plan()   # must not raise
        assert result is not None and result.ok
        # scaled demand saturates capacity; rules still offload sensibly
        rules = result.rules()
        rule = rules.rule_for("S1", "default", "west")
        assert rule is not None
        assert rule.local_fraction() < 0.7

    def test_constant_load_same_plan_both_modes(self):
        reactive = self.make(forecast=False)
        predictive = self.make(forecast=True)
        for _ in range(6):
            for controller in (reactive, predictive):
                controller.observe([make_report("west", 300.0),
                                    make_report("east", 100.0)])
        assert (predictive.demand_estimate("default", "west")
                == pytest.approx(
                    reactive.demand_estimate("default", "west"), rel=0.02))
