"""Tests for routing rules and rule sets."""

import pytest

from repro.core.rules import RoutingRule, RuleSet
from repro.mesh.routing_table import RouteKey, RoutingTable


def test_make_normalises():
    rule = RoutingRule.make("S", "c", "west", {"west": 3.0, "east": 1.0})
    assert rule.weight_map() == pytest.approx({"west": 0.75, "east": 0.25})


def test_make_drops_zero_weights():
    rule = RoutingRule.make("S", "c", "west", {"west": 1.0, "east": 0.0})
    assert rule.weight_map() == {"west": 1.0}


def test_make_rejects_bad_weights():
    with pytest.raises(ValueError):
        RoutingRule.make("S", "c", "west", {})
    with pytest.raises(ValueError):
        RoutingRule.make("S", "c", "west", {"west": -1.0, "east": 2.0})


def test_local_fraction():
    rule = RoutingRule.make("S", "c", "west", {"west": 0.6, "east": 0.4})
    assert rule.local_fraction() == pytest.approx(0.6)
    remote = RoutingRule.make("S", "c", "west", {"east": 1.0})
    assert remote.local_fraction() == 0.0


def test_key():
    rule = RoutingRule.make("S", "c", "west", {"west": 1.0})
    assert rule.key == RouteKey("S", "c", "west")


def test_rule_set_duplicate_rejected():
    rules = RuleSet()
    rules.add(RoutingRule.make("S", "c", "west", {"west": 1.0}))
    rules.add(RoutingRule.make("S", "c", "west", {"east": 1.0}))
    with pytest.raises(ValueError, match="duplicate"):
        rules.by_key()


def test_apply_replaces_table():
    table = RoutingTable()
    table.set_weights(RouteKey("OLD", "c", "west"), {"west": 1.0})
    rules = RuleSet([RoutingRule.make("S", "c", "west", {"east": 1.0})])
    rules.apply(table)
    assert table.weights_for("OLD", "c", "west") is None
    assert table.weights_for("S", "c", "west") == {"east": 1.0}


def test_apply_incremental_preserves_unrelated():
    table = RoutingTable()
    table.set_weights(RouteKey("OTHER", "c", "west"), {"west": 1.0})
    rules = RuleSet([RoutingRule.make("S", "c", "west", {"east": 1.0})])
    rules.apply_incremental(table)
    assert table.weights_for("OTHER", "c", "west") == {"west": 1.0}
    assert table.weights_for("S", "c", "west") == {"east": 1.0}


def test_rule_for_lookup():
    rules = RuleSet([RoutingRule.make("S", "c", "west", {"west": 1.0})])
    assert rules.rule_for("S", "c", "west") is not None
    assert rules.rule_for("S", "c", "east") is None


def test_merge():
    a = RuleSet([RoutingRule.make("S", "c", "west", {"west": 1.0})])
    b = RuleSet([RoutingRule.make("T", "c", "west", {"west": 1.0})])
    merged = a.merge(b)
    assert len(merged) == 2
    assert len(a) == 1
