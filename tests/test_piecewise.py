"""Tests for convex piecewise-linearization."""

import pytest

from repro.core.latency.mm1 import PoolDelayModel
from repro.core.optimizer.piecewise import (Segment, evaluate,
                                            linearize_convex)


def test_exact_at_knots():
    fn = lambda x: x * x
    segments = linearize_convex(fn, 10.0, knot_fractions=(0, 0.5, 1.0))
    for x in (0.0, 5.0, 10.0):
        assert evaluate(segments, x) == pytest.approx(fn(x))


def test_upper_approximation_between_knots():
    fn = lambda x: x * x
    segments = linearize_convex(fn, 10.0, knot_fractions=(0, 0.5, 1.0))
    for x in (1.0, 3.0, 7.0, 9.0):
        assert evaluate(segments, x) >= fn(x) - 1e-12


def test_slopes_nondecreasing():
    model = PoolDelayModel(5)
    segments = linearize_convex(model.backlog, 4.75)
    slopes = [s.slope for s in segments]
    assert slopes == sorted(slopes)


def test_linear_function_exact_everywhere():
    fn = lambda x: 3.0 * x + 1.0
    segments = linearize_convex(fn, 10.0)
    for x in (0.0, 2.7, 10.0):
        assert evaluate(segments, x) == pytest.approx(fn(x))


def test_more_knots_tighter_approximation():
    model = PoolDelayModel(5)
    coarse = linearize_convex(model.backlog, 4.75,
                              knot_fractions=(0, 0.5, 1.0))
    fine = linearize_convex(model.backlog, 4.75)
    x = 3.0
    true = model.backlog(x)
    assert abs(evaluate(fine, x) - true) <= abs(evaluate(coarse, x) - true)


def test_infinite_value_rejected():
    model = PoolDelayModel(5)
    with pytest.raises(ValueError, match="finite"):
        linearize_convex(model.backlog, 5.0)   # pole at capacity


def test_invalid_domain_rejected():
    with pytest.raises(ValueError):
        linearize_convex(lambda x: x, 0.0)


def test_knot_fraction_validation():
    with pytest.raises(ValueError):
        linearize_convex(lambda x: x, 1.0, knot_fractions=(0, 1.5))
    with pytest.raises(ValueError):
        linearize_convex(lambda x: x, 1.0, knot_fractions=(0.5,))


def test_evaluate_empty_rejected():
    with pytest.raises(ValueError):
        evaluate([], 1.0)


def test_segment_value():
    assert Segment(slope=2.0, intercept=1.0).value(3.0) == 7.0
