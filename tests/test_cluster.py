"""Tests for the runtime cluster container."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.topology import ClusterSpec


def make_cluster(replicas=None):
    sim = Simulator()
    spec = ClusterSpec("west", replicas if replicas is not None
                       else {"A": 2, "B": 3})
    return sim, Cluster(sim, spec)


def test_pools_created_from_spec():
    _, cluster = make_cluster()
    assert cluster.has("A")
    assert cluster.pool("A").replicas == 2
    assert cluster.pool("B").replicas == 3


def test_zero_replica_services_not_deployed():
    _, cluster = make_cluster({"A": 1, "B": 0})
    assert cluster.has("A")
    assert not cluster.has("B")


def test_missing_pool_lookup_raises():
    _, cluster = make_cluster()
    with pytest.raises(KeyError, match="not deployed"):
        cluster.pool("missing")


def test_deploy_resizes_existing_pool():
    _, cluster = make_cluster()
    pool = cluster.pool("A")
    resized = cluster.deploy("A", 5)
    assert resized is pool
    assert pool.replicas == 5


def test_undeploy_removes_pool():
    _, cluster = make_cluster()
    cluster.undeploy("A")
    assert not cluster.has("A")
    cluster.undeploy("A")   # idempotent


def test_harvest_stats_covers_all_pools():
    sim, cluster = make_cluster()
    cluster.pool("A").submit(1.0, lambda t: None)
    sim.run()
    stats = cluster.harvest_stats()
    assert set(stats) == {"A", "B"}
    assert stats["A"].completions == 1
    assert stats["B"].completions == 0
