"""Tests for edge caching and its routing/data-locality coupling (§5)."""

import dataclasses

import pytest

from repro.mesh.routing_table import RouteKey
from repro.sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                       two_region_latency)
from repro.sim.apps import AppSpec
from repro.sim.cache import CacheSpec, EdgeCache
from repro.sim.runner import MeshSimulation


class TestEdgeCache:
    def make(self, ttl=10.0, capacity=None):
        return EdgeCache(CacheSpec("MP", "DB", ttl=ttl, capacity=capacity))

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.lookup(7, now=0.0)
        cache.insert(7, now=0.0)
        assert cache.lookup(7, now=5.0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_ttl_expiry(self):
        cache = self.make(ttl=10.0)
        cache.insert(7, now=0.0)
        assert not cache.lookup(7, now=10.5)
        assert len(cache) == 0   # lazily evicted

    def test_capacity_fifo_eviction(self):
        cache = self.make(capacity=2)
        for key in (1, 2, 3):
            cache.insert(key, now=0.0)
        assert not cache.lookup(1, now=1.0)   # evicted
        assert cache.lookup(2, now=1.0)
        assert cache.lookup(3, now=1.0)

    def test_reinsert_refreshes_position_and_ttl(self):
        cache = self.make(ttl=10.0, capacity=2)
        cache.insert(1, now=0.0)
        cache.insert(2, now=1.0)
        cache.insert(1, now=2.0)   # refresh: now newest
        cache.insert(3, now=3.0)   # evicts 2, not 1
        assert cache.lookup(1, now=4.0)
        assert not cache.lookup(2, now=4.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CacheSpec("a", "b", ttl=0.0)
        with pytest.raises(ValueError):
            CacheSpec("a", "b", ttl=1.0, capacity=0)


def cached_anomaly_app(key_space=200, ttl=5.0):
    base = anomaly_detection_app()
    spec = dataclasses.replace(base.classes["default"], key_space=key_space)
    return AppSpec(name=base.name, classes={"default": spec},
                   caches={("MP", "DB"): CacheSpec("MP", "DB", ttl=ttl)})


def make_sim(app, seed=3, **kwargs):
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=8,
        latency=two_region_latency(25.0))
    return MeshSimulation(app, deployment, seed=seed, **kwargs), deployment


class TestCachedSimulation:
    def test_app_cache_key_mismatch_rejected(self):
        base = anomaly_detection_app()
        with pytest.raises(ValueError, match="cache keyed"):
            AppSpec(name="x", classes=base.classes,
                    caches={("FR", "MP"): CacheSpec("MP", "DB", ttl=1.0)})

    def test_requests_get_data_keys(self):
        app = cached_anomaly_app()
        sim, _ = make_sim(app)
        sim.run(DemandMatrix({("default", "west"): 50.0}), duration=3.0)
        assert all(r.data_key is not None and 0 <= r.data_key < 200
                   for r in sim.telemetry.requests)

    def test_no_key_space_no_keys(self):
        app = anomaly_detection_app()   # key_space = 0
        sim, _ = make_sim(app)
        sim.run(DemandMatrix({("default", "west"): 50.0}), duration=2.0)
        assert all(r.data_key is None for r in sim.telemetry.requests)

    def test_cache_hits_skip_db_calls(self):
        app = cached_anomaly_app(key_space=50, ttl=30.0)
        sim, _ = make_sim(app)
        sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
        cache = sim.edge_cache("MP", "DB", "west")
        assert cache.stats.hits > 0
        reports = {r.cluster: r for r in sim.harvest_reports()}
        db_execs = reports["west"].service_class.get(("DB", "default"))
        mp_execs = reports["west"].service_class.get(("MP", "default"))
        # far fewer DB executions than MP executions thanks to the cache
        assert db_execs.completions < mp_execs.completions * 0.6

    def test_cache_hits_lower_latency(self):
        def mean_latency(ttl):
            app = cached_anomaly_app(key_space=50, ttl=ttl)
            sim, _ = make_sim(app)
            sim.run(DemandMatrix({("default", "west"): 200.0}),
                    duration=10.0)
            lats = sim.telemetry.latencies(after=2.0)
            return sum(lats) / len(lats)

        assert mean_latency(ttl=30.0) < mean_latency(ttl=0.001)

    def test_spreading_traffic_splits_the_working_set(self):
        """The §5 data-locality effect: spreading lowers aggregate hit rate."""
        def aggregate_hit_rate(split):
            app = cached_anomaly_app(key_space=300, ttl=5.0)
            sim, _ = make_sim(app)
            sim.table.set_weights(RouteKey("MP", "default", "west"), split)
            sim.run(DemandMatrix({("default", "west"): 200.0}),
                    duration=15.0)
            hits = misses = 0
            for cluster in ("west", "east"):
                try:
                    stats = sim.edge_cache("MP", "DB", cluster).stats
                except KeyError:
                    continue
                hits += stats.hits
                misses += stats.misses
            return hits / (hits + misses)

        concentrated = aggregate_hit_rate({"west": 1.0})
        spread = aggregate_hit_rate({"west": 0.5, "east": 0.5})
        assert concentrated > spread

    def test_unconfigured_edge_cache_lookup_raises(self):
        app = cached_anomaly_app()
        sim, _ = make_sim(app)
        with pytest.raises(KeyError):
            sim.edge_cache("FR", "MP", "west")
