"""Tests for demand timelines, diurnal curves, and CSV traces."""

import math

import pytest

from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation
from repro.sim.traces import (DemandTimeline, diurnal_timeline,
                              install_timeline, load_demand_csv,
                              save_demand_csv)


def dm(west=100.0, east=50.0):
    return DemandMatrix({("default", "west"): west,
                         ("default", "east"): east})


class TestTimeline:
    def test_constant(self):
        timeline = DemandTimeline.constant(dm(), duration=10.0)
        assert timeline.demand_at(5.0).rps("default", "west") == 100.0
        assert timeline.entries() == {("default", "west"),
                                      ("default", "east")}

    def test_keyframe_switching(self):
        timeline = DemandTimeline(
            keyframes=[(0.0, dm(100.0)), (10.0, dm(400.0))], end=20.0)
        assert timeline.demand_at(5.0).rps("default", "west") == 100.0
        assert timeline.demand_at(15.0).rps("default", "west") == 400.0

    def test_profile_segments(self):
        timeline = DemandTimeline(
            keyframes=[(0.0, dm(100.0)), (10.0, dm(400.0))], end=20.0)
        profile = timeline.profile_for("default", "west")
        assert profile.segment_at(5.0).rps == 100.0
        assert profile.segment_at(15.0).rps == 400.0
        assert profile.end == 20.0

    def test_silent_source_profile(self):
        timeline = DemandTimeline.constant(
            DemandMatrix({("default", "west"): 10.0}), duration=5.0)
        profile = timeline.profile_for("default", "east")
        assert profile.segment_at(2.0).rps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="time-ordered"):
            DemandTimeline(keyframes=[(5.0, dm()), (1.0, dm())], end=10.0)
        with pytest.raises(ValueError, match="duplicate"):
            DemandTimeline(keyframes=[(1.0, dm()), (1.0, dm())], end=10.0)
        with pytest.raises(ValueError, match="end"):
            DemandTimeline(keyframes=[(5.0, dm())], end=5.0)

    def test_peak_total(self):
        timeline = DemandTimeline(
            keyframes=[(0.0, dm(100.0, 50.0)), (10.0, dm(400.0, 50.0))],
            end=20.0)
        assert timeline.peak_total_rps() == 450.0


class TestDiurnal:
    def test_sinusoid_shape(self):
        timeline = diurnal_timeline(
            DemandMatrix({("default", "west"): 100.0}),
            duration=86_400.0, amplitude=0.5, steps_per_period=24)
        rates = [demand.rps("default", "west")
                 for _, demand in timeline.keyframes]
        assert max(rates) == pytest.approx(150.0, rel=0.02)
        assert min(rates) == pytest.approx(50.0, rel=0.02)

    def test_phase_shift_creates_imbalance(self):
        timeline = diurnal_timeline(
            dm(100.0, 100.0), duration=86_400.0, amplitude=0.5,
            phase_by_cluster={"west": 0.0, "east": math.pi},
            steps_per_period=24)
        # at the west peak, east is in its trough
        quarter = timeline.keyframes[6][1]   # t = period/4
        assert quarter.rps("default", "west") > 140.0
        assert quarter.rps("default", "east") < 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_timeline(dm(), duration=10.0, amplitude=1.5)
        with pytest.raises(ValueError):
            diurnal_timeline(dm(), duration=10.0, steps_per_period=1)


class TestCSV:
    def test_round_trip(self, tmp_path):
        timeline = DemandTimeline(
            keyframes=[(0.0, dm(100.0)), (10.0, dm(400.0, 75.0))], end=20.0)
        path = tmp_path / "trace.csv"
        save_demand_csv(timeline, path)
        loaded = load_demand_csv(path)
        assert loaded.end == 20.0
        assert loaded.demand_at(15.0).rps("default", "west") == 400.0
        assert loaded.demand_at(15.0).rps("default", "east") == 75.0

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,class,cluster,rps\n")
        with pytest.raises(ValueError, match="no demand rows"):
            load_demand_csv(path)

    def test_missing_end_marker_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,class,cluster,rps\n0.0,default,west,100\n")
        with pytest.raises(ValueError, match="end marker"):
            load_demand_csv(path)


class TestInstall:
    def test_timeline_drives_simulation(self):
        app = linear_chain_app(n_services=2, exec_time=0.005)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=8)
        timeline = DemandTimeline(
            keyframes=[(0.0, DemandMatrix({("default", "west"): 100.0})),
                       (10.0, DemandMatrix({("default", "west"): 300.0}))],
            end=20.0)
        install_timeline(sim, timeline, deterministic=True)
        sim.sim.run(until=20.0)
        sim.sim.run_until_idle()
        first = sum(1 for r in sim.telemetry.requests
                    if r.arrival_time < 10.0)
        second = sum(1 for r in sim.telemetry.requests
                     if r.arrival_time >= 10.0)
        assert first == pytest.approx(1000, abs=5)
        assert second == pytest.approx(3000, abs=5)


class TestRunTimeline:
    def test_run_timeline_with_epochs(self):
        app = linear_chain_app(n_services=2, exec_time=0.005)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=9)
        timeline = DemandTimeline(
            keyframes=[(0.0, DemandMatrix({("default", "west"): 100.0}))],
            end=12.0)
        epochs = []
        sim.run_timeline(timeline, epoch=4.0,
                         on_epoch=lambda reports, s: epochs.append(
                             sum(r.ingress_counts.get("default", 0)
                                 for r in reports)))
        # 2 mid-run boundaries + final harvest
        assert len(epochs) == 3
        assert sum(epochs) == len(sim.telemetry.requests)
        assert len(sim.telemetry.requests) > 1000

    def test_run_timeline_validation(self):
        app = linear_chain_app(n_services=2)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=9)
        timeline = DemandTimeline(
            keyframes=[(0.0, DemandMatrix({("default", "west"): 10.0}))],
            end=5.0)
        with pytest.raises(ValueError, match="epoch"):
            sim.run_timeline(timeline, epoch=0.0)
