"""Tracer: span collection, tree stitching, JSONL round-trip, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, build_trace_tree, chrome_trace
from repro.obs.tracing import span_from_dict, span_to_dict
from repro.sim.request import Request, RequestAttributes, Span, Trace
from repro.sim.topology import two_region_latency


def make_span(request_id=1, service="A", cluster="west",
              caller_service=None, caller_cluster="west",
              enqueue=0.0, start=None, end=None, exec_time=0.01,
              traffic_class="default") -> Span:
    start = enqueue if start is None else start
    end = start + exec_time if end is None else end
    return Span(request_id=request_id, traffic_class=traffic_class,
                service=service, cluster=cluster,
                caller_service=caller_service,
                caller_cluster=caller_cluster,
                enqueue_time=enqueue, start_time=start, end_time=end,
                exec_time=exec_time, request_bytes=100, response_bytes=200)


def three_hop_spans() -> list[Span]:
    """A -> B (cross-cluster) -> C: the hand-built 3-hop trace."""
    return [
        make_span(service="A", cluster="west", caller_service=None,
                  enqueue=0.0, start=0.0, end=0.5, exec_time=0.05),
        make_span(service="B", cluster="east", caller_service="A",
                  caller_cluster="west", enqueue=0.08, start=0.10,
                  end=0.40, exec_time=0.08),
        make_span(service="C", cluster="east", caller_service="B",
                  caller_cluster="east", enqueue=0.20, start=0.22,
                  end=0.35, exec_time=0.13),
    ]


# ------------------------------------------------------------- stitching

def test_tree_stitches_parent_child_chain():
    trace = Trace(1)
    for span in three_hop_spans():
        trace.add(span)
    roots = build_trace_tree(trace)
    assert len(roots) == 1
    root = roots[0]
    assert root.span.service == "A"
    assert [n.span.service for n in root.walk()] == ["A", "B", "C"]
    assert root.depth() == 3


def test_tree_annotates_wan_rtt():
    trace = Trace(1)
    for span in three_hop_spans():
        trace.add(span)
    latency = two_region_latency(25.0)   # 25 ms one-way west<->east
    roots = build_trace_tree(trace, latency=latency)
    nodes = {n.span.service: n for n in roots[0].walk()}
    # the root's "caller" is the ingress gateway in its own cluster, so it
    # carries the intra-cluster network RTT, same as any local hop
    assert nodes["A"].wan_rtt == pytest.approx(0.0005)
    assert nodes["B"].wan_rtt == pytest.approx(0.050)      # cross-cluster
    assert nodes["C"].wan_rtt == pytest.approx(0.0005)     # intra-cluster


def test_tree_orphan_span_becomes_extra_root():
    trace = Trace(1)
    trace.add(make_span(service="A", enqueue=0.0, end=0.5))
    # claims a caller that emitted no span (abandoned/timed-out parent)
    trace.add(make_span(service="X", caller_service="GHOST",
                        caller_cluster="west", enqueue=0.1, end=0.2))
    roots = build_trace_tree(trace)
    assert sorted(r.span.service for r in roots) == ["A", "X"]


def test_tree_picks_latest_containing_parent():
    """Two sequential calls of the same service: the retry nests correctly."""
    trace = Trace(1)
    trace.add(make_span(service="A", enqueue=0.0, start=0.0, end=0.3))
    trace.add(make_span(service="A", enqueue=0.4, start=0.4, end=0.8))
    trace.add(make_span(service="B", caller_service="A",
                        caller_cluster="west", enqueue=0.5, end=0.6))
    roots = build_trace_tree(trace)
    assert len(roots) == 2
    second = [r for r in roots if r.span.start_time > 0.2][0]
    assert [n.span.service for n in second.walk()] == ["A", "B"]


# ------------------------------------------------------------ the tracer

def test_tracer_records_and_queries():
    tracer = Tracer()
    for span in three_hop_spans():
        tracer.record_span(span)
    tracer.record_span(make_span(request_id=2, service="A"))
    assert len(tracer) == 2
    assert tracer.request_ids() == [1, 2]
    assert tracer.span_count == 4
    assert len(tracer.trace(1).spans) == 3
    assert tracer.tree(1)[0].depth() == 3


def test_tracer_request_records():
    tracer = Tracer()
    request = Request(request_id=7, attributes=RequestAttributes("A"),
                      ingress_cluster="west", arrival_time=1.0,
                      completion_time=1.25)
    tracer.record_request(request)
    record = tracer.request(7)
    assert record.latency == pytest.approx(0.25)
    assert not record.failed
    assert tracer.slowest_requests() == [record]


# ------------------------------------------------------------- round-trip

def test_span_dict_round_trip():
    span = three_hop_spans()[1]
    assert span_from_dict(span_to_dict(span)) == span


def test_jsonl_round_trip_in_memory():
    tracer = Tracer()
    for span in three_hop_spans():
        tracer.record_span(span)
    tracer.record_span(make_span(request_id=2, service="Z", cluster="east",
                                 caller_cluster="east"))
    lines = tracer.to_jsonl_lines()
    rebuilt = Tracer.from_jsonl_lines(lines)
    assert rebuilt.to_jsonl_lines() == lines
    assert rebuilt.request_ids() == tracer.request_ids()
    # stitched structure survives the round trip
    assert ([n.span.service for n in rebuilt.tree(1)[0].walk()]
            == [n.span.service for n in tracer.tree(1)[0].walk()])


def test_jsonl_files_round_trip(tmp_path):
    from repro.obs import load_trace_jsonl, write_trace_jsonl
    tracer = Tracer()
    for span in three_hop_spans():
        tracer.record_span(span)
    path = tmp_path / "trace.jsonl"
    count = write_trace_jsonl(tracer, path)
    assert count == 3
    rebuilt = load_trace_jsonl(path)
    assert rebuilt.to_jsonl_lines() == tracer.to_jsonl_lines()


# ---------------------------------------------------------- chrome export

def test_chrome_trace_schema():
    tracer = Tracer()
    for span in three_hop_spans():
        tracer.record_span(span)
    document = chrome_trace(tracer)
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 3
    # every complete event carries the required trace_event fields
    for event in spans:
        assert {"ph", "name", "ts", "dur", "pid", "tid"} <= set(event)
        assert isinstance(event["pid"], int) and event["pid"] >= 1
        assert isinstance(event["tid"], int) and event["tid"] >= 1
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
    # one process per cluster, one named thread per service
    assert {e["args"]["name"] for e in meta if e["name"] == "process_name"} \
        == {"cluster west", "cluster east"}
    assert {e["args"]["name"] for e in meta if e["name"] == "thread_name"} \
        == {"A", "B", "C"}
    # ts/dur are microseconds of simulated time
    b_event = [e for e in spans if e["name"].startswith("B")][0]
    assert b_event["ts"] == pytest.approx(0.08e6)
    assert b_event["dur"] == pytest.approx((0.40 - 0.08) * 1e6)
    json.dumps(document)   # must be serializable as-is


def test_chrome_trace_round_trips_through_jsonl():
    """The Chrome document is a pure function of the span set: rebuilding
    the tracer from its JSONL export reproduces it event-for-event."""
    tracer = Tracer()
    for span in three_hop_spans():
        tracer.record_span(span)
    tracer.record_span(make_span(request_id=2, service="Z", cluster="east",
                                 caller_cluster="east"))
    document = chrome_trace(tracer)
    reparsed = json.loads(json.dumps(document))
    rebuilt = Tracer.from_jsonl_lines(tracer.to_jsonl_lines())
    assert chrome_trace(rebuilt) == reparsed


# ---------------------------------------- edge cases from real runs

def _traced_sim(timeouts, replicas_west=5, seed=2):
    from repro.obs import Observability, ObservabilityConfig
    from repro.sim import DeploymentSpec, linear_chain_app
    from repro.sim.runner import MeshSimulation
    from repro.sim.topology import ClusterSpec

    app = linear_chain_app(n_services=2, exec_time=0.010)
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"S1": replicas_west,
                                       "S2": replicas_west}),
                  ClusterSpec("east", {"S1": 5, "S2": 5})],
        latency=two_region_latency(25.0))
    obs = Observability(ObservabilityConfig(tracing=True))
    sim = MeshSimulation(app, deployment, seed=seed, observability=obs,
                         timeouts=timeouts)
    return sim, obs.tracer


def test_orphan_spans_from_requests_dropped_mid_flight():
    """A request abandoned by its deadline still leaves its spans: the
    orphaned work ran, and the trace must show it."""
    from repro.sim import DemandMatrix
    from repro.sim.runner import TimeoutPolicy

    sim, tracer = _traced_sim(
        TimeoutPolicy(call_timeout=0.2, max_attempts=1), replicas_west=1)
    sim.run(DemandMatrix({("default", "west"): 300.0}), duration=10.0)
    failed = sim.telemetry.failed_requests
    assert failed, "overload scenario must produce failed requests"
    traced_failures = [r for r in failed if len(tracer.trace(r.request_id).spans)]
    assert traced_failures, "dropped requests left no spans at all"
    for request in traced_failures[:20]:
        roots = tracer.tree(request.request_id)
        assert roots, "spans recorded but nothing stitched"
        record = tracer.request(request.request_id)
        assert record is not None and record.failed
        # orphaned downstream work may finish *after* the request erred out
        spans = tracer.trace(request.request_id).spans
        assert all(span.end_time >= span.start_time >= span.enqueue_time
                   for span in spans)
    orphan_work = [
        span
        for request in traced_failures
        for span in tracer.trace(request.request_id).spans
        if tracer.request(request.request_id).completion_time is not None
        and span.end_time > tracer.request(request.request_id).completion_time
    ]
    assert orphan_work, "no span outlived its abandoned request"


def test_stitching_across_a_wan_retry():
    """S2 is routed over the WAN, the remote cluster dies mid-flight, and
    the timed-out call retries locally: the retry attempt must stitch as a
    child of the original caller span."""
    from repro.mesh.routing_table import RouteKey
    from repro.sim import DemandMatrix
    from repro.sim.runner import TimeoutPolicy

    sim, tracer = _traced_sim(TimeoutPolicy(call_timeout=0.3, max_attempts=2))
    sim.table.set_weights(RouteKey("S2", "default", "west"), {"east": 1.0})
    sim.sim.schedule(2.0, sim.fail_service, "east", "S2")
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
    assert sim.dropped_calls > 0
    assert sim.telemetry.failed_requests == []   # every retry succeeded

    retried = []
    for request_id in tracer.request_ids():
        for span in tracer.trace(request_id).spans:
            # the retry signature: an S2 attempt enqueued a full deadline
            # after the kill, landing in west (east is excluded)
            if (span.service == "S2" and span.cluster == "west"
                    and span.enqueue_time >= 2.3 - 1e-9
                    and span.caller_service == "S1"
                    and span.caller_cluster == "west"):
                retried.append(request_id)
    assert retried, "no retried S2 attempt found in the traces"
    for request_id in retried[:20]:
        roots = tracer.tree(request_id)
        # (an ingress retry can legitimately produce a second S1 root; the
        # retried S2 attempt must still stitch under one of them)
        parent_of = {id(child): node
                     for root in roots for node in root.walk()
                     for child in node.children}
        stitched = False
        for root in roots:
            for node in root.walk():
                span = node.span
                if (span.service == "S2" and span.cluster == "west"
                        and span.enqueue_time >= 2.3 - 1e-9
                        and span.caller_cluster == "west"):
                    parent = parent_of.get(id(node))
                    assert parent is not None, "retried attempt orphaned"
                    assert parent.span.service == "S1"
                    # the caller's window contains the retry enqueue
                    assert (parent.span.start_time
                            <= span.enqueue_time + 1e-9)
                    assert node.wan_rtt == pytest.approx(0.0005)  # local now
                    stitched = True
        assert stitched


def test_chrome_trace_max_requests_caps_output(tmp_path):
    from repro.obs import write_chrome_trace
    tracer = Tracer()
    for rid in range(1, 6):
        tracer.record_span(make_span(request_id=rid))
    events = write_chrome_trace(tracer, tmp_path / "t.json", max_requests=2)
    document = json.loads((tmp_path / "t.json").read_text())
    spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 2
    assert events == len(document["traceEvents"])
