"""Tests for M/M/1 and M/M/c queueing relations."""

import math

import pytest

from repro.core.latency.mm1 import (PoolDelayModel, erlang_c, mm1_backlog,
                                    mm1_sojourn, mmc_backlog, mmc_mean_wait,
                                    mmc_sojourn)


class TestMM1:
    def test_sojourn_formula(self):
        assert mm1_sojourn(50.0, 100.0) == pytest.approx(0.02)

    def test_sojourn_infinite_at_capacity(self):
        assert mm1_sojourn(100.0, 100.0) == math.inf

    def test_backlog_formula(self):
        assert mm1_backlog(0.5) == pytest.approx(1.0)
        assert mm1_backlog(0.9) == pytest.approx(9.0)

    def test_backlog_zero_load(self):
        assert mm1_backlog(0.0) == 0.0

    def test_backlog_infinite_at_one(self):
        assert mm1_backlog(1.0) == math.inf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mm1_sojourn(-1.0, 1.0)
        with pytest.raises(ValueError):
            mm1_backlog(-0.1)


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # for c=1 the waiting probability is rho
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturated(self):
        assert erlang_c(4, 4.0) == 1.0

    def test_known_value(self):
        # textbook: c=2, a=1 -> C = 1/3
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_load(self):
        values = [erlang_c(5, a) for a in (1.0, 2.0, 3.0, 4.0, 4.5)]
        assert values == sorted(values)

    def test_more_servers_less_waiting(self):
        assert erlang_c(10, 4.0) < erlang_c(5, 4.0)

    def test_large_server_count_stable(self):
        value = erlang_c(500, 450.0)
        assert 0.0 < value < 1.0


class TestMMC:
    def test_single_server_matches_mm1(self):
        lam, st = 50.0, 0.01
        expected = mm1_sojourn(lam, 1.0 / st)
        assert mmc_sojourn(lam, st, 1) == pytest.approx(expected)

    def test_wait_zero_at_zero_load(self):
        assert mmc_mean_wait(0.0, 0.01, 4) == 0.0

    def test_wait_infinite_at_capacity(self):
        assert mmc_mean_wait(400.0, 0.01, 4) == math.inf

    def test_sojourn_at_least_service_time(self):
        assert mmc_sojourn(100.0, 0.01, 4) >= 0.01

    def test_backlog_little_law_consistency(self):
        # N = lambda * W must hold between our two functions
        lam, st, c = 300.0, 0.01, 4
        n = mmc_backlog(lam * st, c)
        w = mmc_sojourn(lam, st, c)
        assert n == pytest.approx(lam * w, rel=1e-9)

    def test_backlog_convex_in_offered_load(self):
        c = 5
        points = [0.5, 1.5, 2.5, 3.5, 4.5]
        values = [mmc_backlog(a, c) for a in points]
        for left, mid, right in zip(values, values[1:], values[2:]):
            assert mid <= (left + right) / 2 + 1e-12


class TestPoolDelayModel:
    def test_mmc_mode_matches_function(self):
        model = PoolDelayModel(4, mode="mmc")
        assert model.backlog(2.0) == pytest.approx(mmc_backlog(2.0, 4))

    def test_mm1_mode_matches_function(self):
        model = PoolDelayModel(4, mode="mm1")
        assert model.backlog(2.0) == pytest.approx(mm1_backlog(0.5))

    def test_mm1_mode_pessimistic_at_low_load(self):
        # M/M/c has more parallel slack than the single fast server at the
        # same utilization only near saturation; at rho=0.5 the fast-server
        # model has less backlog than M/M/c's in-service jobs
        mmc = PoolDelayModel(8, mode="mmc").backlog(4.0)
        mm1 = PoolDelayModel(8, mode="mm1").backlog(4.0)
        assert mm1 != mmc   # the two modes genuinely differ

    def test_capacity(self):
        assert PoolDelayModel(6).capacity == 6.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PoolDelayModel(2, mode="mg1")

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            PoolDelayModel(0)
