"""Solver memoization: fingerprints, LRU bounds, and controller wiring.

The cache's correctness contract: a hit must yield a result *semantically
equal* to a fresh solve (same flows, objective, predictions), distinct
models must never collide, the size bound must hold under pressure, and
failed solves must never poison the cache. The wiring contract: an
adaptive Global Controller with quantized demand re-plans steady epochs
from the cache instead of HiGHS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.core.optimizer import (SolverCache, TEProblem, build_model,
                                  model_fingerprint, solve, solve_model)
from repro.core.optimizer.solve import SolverError
from repro.mesh.telemetry import ClusterEpochReport
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)


def make_problem(west_rps=300.0, east_rps=100.0, n_services=3):
    app = linear_chain_app(n_services=n_services, exec_time=0.008)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    return TEProblem.from_specs(app, deployment, demand)


def make_report(cluster, rps, duration=5.0):
    report = ClusterEpochReport(cluster=cluster, start_time=0.0,
                                duration=duration)
    report.ingress_counts["default"] = int(rps * duration)
    return report


# ------------------------------------------------------------ fingerprints


def test_fingerprint_deterministic_across_builds():
    first = build_model(make_problem())
    second = build_model(make_problem())
    assert model_fingerprint(first) == model_fingerprint(second)


def test_fingerprint_distinguishes_models():
    base = model_fingerprint(build_model(make_problem()))
    more_demand = model_fingerprint(build_model(make_problem(west_rps=310.0)))
    bigger_app = model_fingerprint(build_model(make_problem(n_services=4)))
    assert len({base, more_demand, bigger_app}) == 3


# ------------------------------------------------------------ hit semantics


def test_cache_hit_returns_equal_result():
    cache = SolverCache()
    cold = solve(make_problem(), cache=cache)
    warm = solve(make_problem(), cache=cache)

    assert not cold.cache_hit
    assert warm.cache_hit
    # dataclass equality covers flows, objective, pool loads, predictions;
    # the cache_* diagnostics are compare=False so this is semantic equality
    assert warm == cold
    assert warm.flows == cold.flows
    assert warm.objective == pytest.approx(cold.objective)
    assert cache.stats() == {"hits": 1, "misses": 1, "hit_rate": 0.5,
                             "entries": 1}
    assert warm.cache_hits == 1 and warm.cache_misses == 1


def test_distinct_models_never_collide():
    cache = SolverCache()
    first = solve(make_problem(west_rps=300.0), cache=cache)
    second = solve(make_problem(west_rps=420.0), cache=cache)
    assert not second.cache_hit
    assert cache.misses == 2 and cache.hits == 0
    # each re-solve replays its own entry, not the other's
    assert solve(make_problem(west_rps=300.0), cache=cache).flows == \
        first.flows
    assert solve(make_problem(west_rps=420.0), cache=cache).flows == \
        second.flows


def test_cached_vector_is_isolated_from_caller():
    cache = SolverCache()
    model = build_model(make_problem())
    solve_model(model, cache=cache)
    vector, _ = cache.lookup(model_fingerprint(model))
    vector[:] = -1.0   # corrupting the returned copy must not leak back
    replay = solve_model(model, cache=cache)
    assert replay.cache_hit and replay.ok
    assert all(rate >= 0 for rate in replay.flows.values())


def test_failed_solves_are_not_cached():
    cache = SolverCache()
    infeasible = make_problem(west_rps=50_000.0)   # beyond global capacity
    with pytest.raises(SolverError):
        solve(infeasible, cache=cache)
    assert len(cache) == 0


# ---------------------------------------------------------------- eviction


def test_eviction_respects_maxsize():
    cache = SolverCache(maxsize=2)
    for index in range(4):
        cache.store(f"fp{index}", np.zeros(3), "optimal")
        assert len(cache) <= 2
    assert cache.lookup("fp0") is None and cache.lookup("fp1") is None
    assert cache.lookup("fp2") is not None and cache.lookup("fp3") is not None


def test_lookup_refreshes_lru_recency():
    cache = SolverCache(maxsize=2)
    cache.store("a", np.zeros(1), "optimal")
    cache.store("b", np.zeros(1), "optimal")
    assert cache.lookup("a") is not None   # 'a' becomes most recent
    cache.store("c", np.zeros(1), "optimal")   # evicts 'b', not 'a'
    assert cache.lookup("a") is not None
    assert cache.lookup("b") is None


def test_maxsize_validation():
    with pytest.raises(ValueError):
        SolverCache(maxsize=0)


# ---------------------------------------------------- controller wiring


def controller_with(config):
    app = linear_chain_app(n_services=3, exec_time=0.008)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    return GlobalController(app, deployment, config)


def test_quantized_controller_replans_from_cache():
    controller = controller_with(GlobalControllerConfig(
        learn_profiles=False, demand_quantum=25.0))
    # steady demand with sub-quantum telemetry jitter across epochs
    for jitter in (0.0, 4.0, -6.0, 3.0):
        controller.observe([make_report("west", 300.0 + jitter),
                            make_report("east", 120.0 + jitter)])
        result = controller.plan()
        assert result is not None and result.ok
    stats = controller.solver_cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 3
    assert controller.last_result.cache_hit


def test_unquantized_controller_resolves_every_epoch():
    controller = controller_with(GlobalControllerConfig(
        learn_profiles=False, demand_quantum=0.0))
    for jitter in (0.0, 4.0, -6.0):
        controller.observe([make_report("west", 300.0 + jitter),
                            make_report("east", 120.0)])
        assert controller.plan().ok
    # EWMA jitter makes every instance numerically fresh: no hits
    assert controller.solver_cache.hits == 0
    assert controller.solver_cache.misses == 3


def test_cache_disabled_by_config():
    controller = controller_with(GlobalControllerConfig(
        learn_profiles=False, solver_cache_size=0))
    assert controller.solver_cache is None
    controller.observe([make_report("west", 300.0)])
    result = controller.plan()
    assert result.ok and not result.cache_hit
