"""Tests for call-graph inference from trace telemetry."""

import pytest

from repro.core.classes.callgraph import CallGraphLearner
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.sim import (DemandMatrix, DeploymentSpec, fanout_app,
                       linear_chain_app, two_class_app, two_region_latency)
from repro.sim.request import RequestAttributes, Span
from repro.sim.runner import MeshSimulation


def make_span(service, caller, cls="default", exec_time=0.01,
              request_bytes=1000, response_bytes=10000):
    return Span(request_id=1, traffic_class=cls, service=service,
                cluster="west", caller_service=caller,
                caller_cluster="west", enqueue_time=0.0, start_time=0.0,
                end_time=exec_time, exec_time=exec_time,
                request_bytes=request_bytes, response_bytes=response_bytes)


def chain_spans(n_requests, cls="default"):
    spans = []
    for _ in range(n_requests):
        spans.append(make_span("S1", None, cls=cls))
        spans.append(make_span("S2", "S1", cls=cls))
        spans.append(make_span("S3", "S2", cls=cls))
    return spans


class TestLearner:
    def test_not_ready_without_evidence(self):
        learner = CallGraphLearner(min_executions=20)
        assert not learner.ready("default")
        learner.ingest(chain_spans(5))
        assert not learner.ready("default")
        learner.ingest(chain_spans(20))
        assert learner.ready("default")

    def test_root_detection(self):
        learner = CallGraphLearner()
        learner.ingest(chain_spans(30))
        assert learner.root_service("default") == "S1"

    def test_infer_recovers_chain(self):
        learner = CallGraphLearner()
        learner.ingest(chain_spans(50))
        spec = learner.infer_spec("default", RequestAttributes.make("S1"))
        assert spec.root_service == "S1"
        assert {(e.caller, e.callee) for e in spec.edges} == {
            ("S1", "S2"), ("S2", "S3")}
        for edge in spec.edges:
            assert edge.calls_per_request == pytest.approx(1.0)
            assert edge.request_bytes == 1000
            assert edge.response_bytes == 10000
        assert spec.exec_time["S2"] == pytest.approx(0.01)

    def test_infer_recovers_fanout_multiplicity(self):
        learner = CallGraphLearner()
        spans = []
        for _ in range(40):
            spans.append(make_span("FE", None))
            for _ in range(3):
                spans.append(make_span("B", "FE"))
        learner.ingest(spans)
        spec = learner.infer_spec("default", RequestAttributes.make("FE"))
        assert spec.edges[0].calls_per_request == pytest.approx(3.0)

    def test_fractional_fanout(self):
        learner = CallGraphLearner()
        spans = []
        for index in range(100):
            spans.append(make_span("P", None))
            if index % 2 == 0:
                spans.append(make_span("Q", "P"))
        learner.ingest(spans)
        spec = learner.infer_spec("default", RequestAttributes.make("P"))
        assert spec.edges[0].calls_per_request == pytest.approx(0.5)

    def test_tree_violation_flagged_dominant_kept(self):
        learner = CallGraphLearner(min_executions=10)
        spans = []
        for _ in range(30):
            spans.append(make_span("A", None))
            spans.append(make_span("B", "A"))
            spans.append(make_span("C", "B"))
        for _ in range(5):   # minority caller A -> C
            spans.append(make_span("A", None))
            spans.append(make_span("C", "A"))
        learner.ingest(spans)
        spec = learner.infer_spec("default", RequestAttributes.make("A"))
        callers = {e.callee: e.caller for e in spec.edges}
        assert callers["C"] == "B"   # dominant caller wins
        assert "C" in learner.tree_violations["default"]

    def test_classes_tracked_separately(self):
        learner = CallGraphLearner(min_executions=5)
        learner.ingest(chain_spans(10, cls="a"))
        learner.ingest([make_span("X", None, cls="b")] * 10)
        assert learner.classes_seen == ["a", "b"]
        assert learner.root_service("a") == "S1"
        assert learner.root_service("b") == "X"

    def test_infer_unready_raises(self):
        learner = CallGraphLearner()
        with pytest.raises(ValueError, match="not enough"):
            learner.infer_spec("default", RequestAttributes.make("S1"))

    def test_min_executions_validation(self):
        with pytest.raises(ValueError):
            CallGraphLearner(min_executions=0)


class TestEndToEnd:
    def run_learning(self, app, demand, sample_rate=1.0, duration=10.0):
        from repro.core.classes.classifier import AppSpecClassifier
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=10,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=4,
                             classifier=AppSpecClassifier(app),
                             trace_sample_rate=sample_rate)
        controller = GlobalController(
            app, deployment,
            GlobalControllerConfig(learn_structure=True))
        sim.run(demand, duration=duration, epoch=duration / 2,
                on_epoch=lambda reports, s: controller.observe(reports))
        return controller

    def test_learns_chain_structure_from_simulation(self):
        app = linear_chain_app(n_services=3, exec_time=0.010)
        demand = DemandMatrix({("default", "west"): 100.0})
        controller = self.run_learning(app, demand)
        spec = controller.callgraph.infer_spec(
            "default", app.classes["default"].attributes)
        truth = app.classes["default"]
        assert [(e.caller, e.callee) for e in spec.edges] == [
            (e.caller, e.callee) for e in truth.edges]
        for service in truth.services():
            assert spec.exec_time_of(service) == pytest.approx(
                truth.exec_time_of(service), rel=0.15)

    def test_learned_structure_plans_successfully(self):
        app = two_class_app()
        demand = DemandMatrix({("L", "west"): 150.0, ("H", "west"): 50.0,
                               ("L", "east"): 50.0})
        controller = self.run_learning(app, demand)
        result = controller.plan()
        assert result is not None and result.ok

    def test_sampled_traces_still_approximate_structure(self):
        app = fanout_app(width=3, exec_time=0.005)
        demand = DemandMatrix({("default", "west"): 300.0})
        controller = self.run_learning(app, demand, sample_rate=0.2,
                                       duration=15.0)
        spec = controller.callgraph.infer_spec(
            "default", app.classes["default"].attributes)
        total_cpr = sum(e.calls_per_request for e in spec.edges)
        # 3 backend edges with cpr 1 each; stride sampling keeps ratios
        assert total_cpr == pytest.approx(3.0, rel=0.15)


class TestTelemetrySampling:
    def test_zero_rate_keeps_no_spans(self):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=1, trace_sample_rate=0.0)
        sim.run(DemandMatrix({("default", "west"): 100.0}), duration=3.0)
        reports = sim.harvest_reports()
        assert all(not r.span_samples for r in reports)

    def test_rate_controls_sample_volume(self):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=1, trace_sample_rate=0.1)
        sim.run(DemandMatrix({("default", "west"): 100.0}), duration=5.0)
        reports = {r.cluster: r for r in sim.harvest_reports()}
        west = reports["west"]
        total_spans = sum(w.completions
                          for w in west.service_class.values())
        # Bernoulli sampling: ~10% of spans, binomial noise
        assert len(west.span_samples) == pytest.approx(total_spans / 10,
                                                       rel=0.35)

    def test_sampling_does_not_alias_periodic_span_patterns(self):
        """Chain apps emit spans periodically (S1, S2, S3, ...); the
        sampler must not systematically prefer one service."""
        from collections import Counter
        app = linear_chain_app(n_services=3)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=2, trace_sample_rate=0.1)
        sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
        reports = {r.cluster: r for r in sim.harvest_reports()}
        counts = Counter(s.service for s in reports["west"].span_samples)
        assert set(counts) == {"S1", "S2", "S3"}
        assert max(counts.values()) < 2 * min(counts.values())

    def test_fractional_sampling_requires_rng(self):
        from repro.mesh.telemetry import ProxyTelemetry
        with pytest.raises(ValueError, match="rng"):
            ProxyTelemetry("west", trace_sample_rate=0.5)

    def test_invalid_rate_rejected(self):
        from repro.mesh.telemetry import ProxyTelemetry
        with pytest.raises(ValueError):
            ProxyTelemetry("west", trace_sample_rate=1.5)
