"""Integration tests for the simulation runner (request execution)."""

import pytest

from repro.mesh.routing_table import RouteKey
from repro.sim import (CallEdge, DemandMatrix, DeploymentSpec, TrafficClassSpec,
                       AppSpec, linear_chain_app, fanout_app,
                       two_region_latency)
from repro.sim.request import RequestAttributes
from repro.sim.runner import MeshSimulation


def chain_sim(replicas=5, one_way_ms=25.0, **sim_kwargs):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(one_way_ms))
    return app, MeshSimulation(app, deployment, seed=1, **sim_kwargs)


def test_all_requests_complete():
    _, sim = chain_sim()
    demand = DemandMatrix({("default", "west"): 100.0})
    sim.run(demand, duration=5.0)
    assert len(sim.telemetry.requests) > 300
    assert all(r.done for r in sim.telemetry.requests)


def test_local_run_has_no_egress():
    _, sim = chain_sim()
    sim.run(DemandMatrix({("default", "west"): 100.0}), duration=5.0)
    assert sim.network.ledger.total_bytes == 0


def test_deterministic_given_seed():
    def latencies():
        _, sim = chain_sim()
        sim.run(DemandMatrix({("default", "west"): 100.0}), duration=5.0)
        return sim.telemetry.latencies()

    assert latencies() == latencies()


def test_latency_floor_is_exec_plus_hops():
    _, sim = chain_sim(deterministic_exec=True)
    sim.run(DemandMatrix({("default", "west"): 10.0}), duration=5.0,
            deterministic_arrivals=True)
    lats = sim.telemetry.latencies()
    # 3 x 10ms exec + 3 calls x 2 intra-cluster hops x 0.25ms; no queueing
    floor = 3 * 0.010 + 3 * 2 * 0.00025
    assert min(lats) == pytest.approx(floor, rel=0.01)


def test_remote_routing_rule_adds_rtt_and_egress():
    app, sim = chain_sim(deterministic_exec=True)
    # route the middle hop east: S2 crossing adds one WAN RTT
    sim.table.set_weights(RouteKey("S2", "default", "west"), {"east": 1.0})
    sim.run(DemandMatrix({("default", "west"): 10.0}), duration=5.0,
            deterministic_arrivals=True)
    lats = sim.telemetry.latencies()
    # exactly one WAN crossing: S1(west)->S2(east); S2->S3 stays east
    assert min(lats) == pytest.approx(3 * 0.010 + 0.050 + 2 * 2 * 0.00025,
                                      rel=0.01)
    assert sim.network.ledger.total_bytes > 0


def test_spans_report_to_owning_cluster():
    app, sim = chain_sim()
    sim.table.set_weights(RouteKey("S3", "default", "west"), {"east": 1.0})
    sim.run(DemandMatrix({("default", "west"): 50.0}), duration=5.0)
    reports = {r.cluster: r for r in sim.harvest_reports()}
    assert reports["west"].service_rps("S1", "default") > 0
    assert reports["east"].service_rps("S3", "default") > 0
    assert reports["west"].service_rps("S3", "default") == 0


def test_epoch_hook_invoked():
    _, sim = chain_sim()
    epochs = []
    sim.run(DemandMatrix({("default", "west"): 50.0}), duration=10.0,
            epoch=2.5, on_epoch=lambda reports, s: epochs.append(
                sum(r.ingress_counts.get("default", 0) for r in reports)))
    # 3 mid-run boundaries + final harvest
    assert len(epochs) == 4
    assert sum(epochs) == len(sim.telemetry.requests)


def test_unknown_demand_class_rejected():
    _, sim = chain_sim()
    with pytest.raises(ValueError, match="unknown traffic class"):
        sim.run(DemandMatrix({("nope", "west"): 10.0}), duration=1.0)


def test_unknown_demand_cluster_rejected():
    _, sim = chain_sim()
    with pytest.raises(ValueError, match="unknown cluster"):
        sim.run(DemandMatrix({("default", "mars"): 10.0}), duration=1.0)


def test_parallel_fanout_latency_is_max_not_sum():
    app = fanout_app(width=4, exec_time=0.020, parallel=True)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west"],
        replicas=50, latency=two_region_latency(25.0, west="west",
                                                east="unused-east"))
    # single-cluster deployment: add the unused cluster to satisfy matrix
    sim = MeshSimulation(app, deployment, seed=2, deterministic_exec=True)
    sim.run(DemandMatrix({("default", "west"): 10.0}), duration=5.0,
            deterministic_arrivals=True)
    lats = sim.telemetry.latencies()
    # sequential would be 10ms + 4x20ms = 90ms; parallel is 10 + 20 = 30ms
    assert max(lats) < 0.045


def test_sequential_fanout_latency_is_sum():
    app = fanout_app(width=4, exec_time=0.020, parallel=False)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west"],
        replicas=50, latency=two_region_latency(25.0, west="west",
                                                east="unused-east"))
    sim = MeshSimulation(app, deployment, seed=2, deterministic_exec=True)
    sim.run(DemandMatrix({("default", "west"): 10.0}), duration=5.0,
            deterministic_arrivals=True)
    lats = sim.telemetry.latencies()
    assert min(lats) > 0.010 + 4 * 0.020 - 0.001


def test_fractional_calls_per_request_realised_probabilistically():
    spec = TrafficClassSpec(
        name="default",
        attributes=RequestAttributes.make("P"),
        root_service="P",
        edges=[CallEdge("P", "Q", calls_per_request=0.5)],
        exec_time={"P": 0.001, "Q": 0.001},
    )
    app = AppSpec(name="frac", classes={"default": spec})
    deployment = DeploymentSpec.uniform(
        ["P", "Q"], ["west", "east"], replicas=20,
        latency=two_region_latency(10.0))
    sim = MeshSimulation(app, deployment, seed=3, keep_spans=True)
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
    q_spans = sum(1 for s in sim.telemetry.spans if s.service == "Q")
    p_spans = sum(1 for s in sim.telemetry.spans if s.service == "P")
    assert q_spans / p_spans == pytest.approx(0.5, abs=0.05)


def test_queueing_latency_grows_with_load():
    def mean_latency(rps):
        _, sim = chain_sim()
        sim.run(DemandMatrix({("default", "west"): rps}), duration=15.0)
        lats = sim.telemetry.latencies(after=3.0)
        return sum(lats) / len(lats)

    assert mean_latency(450.0) > 1.5 * mean_latency(100.0)
