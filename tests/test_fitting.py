"""Tests for latency-profile learning."""

import pytest

from repro.core.latency.fitting import (LoadLatencySample, fit_mmc_service_time,
                                        service_time_from_window)
from repro.core.latency.mm1 import mmc_sojourn
from repro.core.latency.profiles import ProfileRegistry
from repro.mesh.telemetry import ClusterEpochReport, ServiceClassWindow
from repro.sim.request import Span


def window_with_execs(execs):
    window = ServiceClassWindow()
    for exec_time in execs:
        window.observe(Span(
            request_id=1, traffic_class="c", service="s", cluster="west",
            caller_service=None, caller_cluster="west", enqueue_time=0.0,
            start_time=0.0, end_time=exec_time, exec_time=exec_time))
    return window


def test_service_time_from_window_is_mean_exec():
    window = window_with_execs([0.010, 0.020, 0.030])
    assert service_time_from_window(window) == pytest.approx(0.020)


def test_service_time_from_empty_window_none():
    assert service_time_from_window(ServiceClassWindow()) is None


def test_fit_recovers_true_service_time():
    st_true, servers = 0.012, 5
    samples = [LoadLatencySample(lam, mmc_sojourn(lam, st_true, servers))
               for lam in (50.0, 150.0, 250.0, 350.0)]
    fit = fit_mmc_service_time(samples, servers)
    assert fit.service_time == pytest.approx(st_true, rel=0.02)
    assert fit.residual < 1e-8


def test_fit_with_noise_close_to_truth():
    st_true, servers = 0.010, 4
    noise = [1.03, 0.97, 1.05, 0.96, 1.02]
    samples = [
        LoadLatencySample(lam, mmc_sojourn(lam, st_true, servers) * eps)
        for lam, eps in zip((40.0, 120.0, 200.0, 280.0, 360.0), noise)
    ]
    fit = fit_mmc_service_time(samples, servers)
    assert fit.service_time == pytest.approx(st_true, rel=0.10)


def test_fit_rejects_too_few_samples():
    samples = [LoadLatencySample(10.0, 0.02)]
    with pytest.raises(ValueError, match="at least"):
        fit_mmc_service_time(samples, 2)


def test_fit_rejects_invalid_servers():
    with pytest.raises(ValueError):
        fit_mmc_service_time([], 0)


def test_sample_validation():
    with pytest.raises(ValueError):
        LoadLatencySample(-1.0, 0.5)


def make_report(cluster, service_times, completions=10):
    report = ClusterEpochReport(cluster=cluster, start_time=0.0, duration=5.0)
    for (service, cls), st in service_times.items():
        report.service_class[(service, cls)] = window_with_execs(
            [st] * completions)
    return report


class TestProfileRegistry:
    def test_first_observation_taken_directly(self):
        registry = ProfileRegistry()
        registry.ingest([make_report("west", {("A", "c"): 0.02})])
        assert registry.service_time("A", "c") == pytest.approx(0.02)
        assert registry.known("A", "c")

    def test_unknown_pair_uses_default(self):
        registry = ProfileRegistry(default_service_time=0.007)
        assert registry.service_time("A", "c") == 0.007
        assert not registry.known("A", "c")

    def test_ewma_smoothing(self):
        registry = ProfileRegistry(alpha=0.5)
        registry.ingest([make_report("west", {("A", "c"): 0.02})])
        registry.ingest([make_report("west", {("A", "c"): 0.04})])
        assert registry.service_time("A", "c") == pytest.approx(0.03)

    def test_cross_cluster_merge_weighted_by_completions(self):
        registry = ProfileRegistry()
        registry.ingest([
            make_report("west", {("A", "c"): 0.010}, completions=90),
            make_report("east", {("A", "c"): 0.030}, completions=10),
        ])
        assert registry.service_time("A", "c") == pytest.approx(0.012)

    def test_exec_time_map(self):
        registry = ProfileRegistry(default_service_time=0.005)
        registry.ingest([make_report("west", {("A", "c"): 0.02})])
        mapping = registry.exec_time_map("c", ["A", "B"])
        assert mapping == {"A": pytest.approx(0.02), "B": 0.005}

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ProfileRegistry(alpha=0.0)
        with pytest.raises(ValueError):
            ProfileRegistry(alpha=1.5)

    def test_len_counts_profiles(self):
        registry = ProfileRegistry()
        registry.ingest([make_report("west", {("A", "c"): 0.02,
                                              ("B", "c"): 0.01})])
        assert len(registry) == 2
