"""Tests for the debug-mode runtime invariant checker.

The checker must stay silent on healthy runs (the whole suite runs under
``REPRO_DEBUG_INVARIANTS=1`` in ``make check``) and fire with an
actionable message — naming the service/cluster/stream — when state is
corrupted behind the simulator's back.
"""

from __future__ import annotations

import pytest

from repro.devtools.invariants import (INVARIANTS_ENV, InvariantViolation,
                                       check_event_monotonic,
                                       check_pool_depths,
                                       check_request_conservation,
                                       check_routing_table,
                                       invariants_enabled)
from repro.mesh.routing_table import RouteKey, RoutingTable
from repro.sim import (DemandMatrix, DeploymentSpec, ReplicaPool, Simulator,
                       linear_chain_app, two_region_latency)
from repro.sim.runner import MeshSimulation


@pytest.fixture
def debug_invariants(monkeypatch):
    monkeypatch.setenv(INVARIANTS_ENV, "1")


def small_sim(seed: int = 0) -> MeshSimulation:
    app = linear_chain_app(n_services=2, exec_time=0.005)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=3,
        latency=two_region_latency(20.0))
    return MeshSimulation(app, deployment, seed=seed)


def test_env_flag_parsing(monkeypatch):
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert invariants_enabled()
    for value in ("", "0", "false", "off"):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert not invariants_enabled()
    monkeypatch.delenv(INVARIANTS_ENV)
    assert not invariants_enabled()


# ------------------------------------------------------------- engine loop

def test_engine_detects_time_travel(debug_invariants):
    import heapq

    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=0.5)           # now == 0.5, event still pending
    # corrupt the heap with an entry in the past (bypasses schedule_at's
    # own validation, as a buggy component mutating state would)
    heapq.heappush(sim._heap, (0.25, -1, lambda: None, ()))
    with pytest.raises(InvariantViolation, match="monotonicity"):
        sim.run()


def test_check_event_monotonic_names_the_callback():
    def my_handler():
        pass

    with pytest.raises(InvariantViolation, match="my_handler"):
        check_event_monotonic(2.0, 1.0, my_handler)
    check_event_monotonic(1.0, 1.0, my_handler)   # equal time is fine


# ---------------------------------------------------------- routing matrix

def test_corrupted_routing_table_fires_with_context(debug_invariants):
    sim = small_sim()
    key = RouteKey("s0", "default", "west")
    sim.table.set_weights(key, {"west": 0.6, "east": 0.4})
    # corrupt the installed row behind the normaliser's back
    sim.table._rules[key]["west"] = 5.0
    demand = DemandMatrix({("default", "west"): 50.0})
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run(demand, duration=0.5)
    message = str(excinfo.value)
    assert "'s0'" in message and "'west'" in message
    assert "sums to" in message


def test_corrupted_table_ignored_without_flag(monkeypatch):
    monkeypatch.delenv(INVARIANTS_ENV, raising=False)
    sim = small_sim()
    key = RouteKey("s0", "default", "west")
    sim.table.set_weights(key, {"west": 0.6, "east": 0.4})
    sim.table._rules[key]["west"] = 5.0
    # weights no longer sum to 1 but checks are off: the run completes
    sim.run(DemandMatrix({("default", "west"): 20.0}), duration=0.2)
    assert sim.telemetry.requests


def test_check_routing_table_rejects_bad_rows():
    table = RoutingTable()
    key = RouteKey("svc", "*", "east")
    table.set_weights(key, {"east": 1.0})
    check_routing_table(table)   # healthy table passes
    table._rules[key] = {}
    with pytest.raises(InvariantViolation, match="empty weight row"):
        check_routing_table(table)
    table._rules[key] = {"east": -0.5, "west": 1.5}
    with pytest.raises(InvariantViolation, match="invalid weight"):
        check_routing_table(table)


# ----------------------------------------------------- request conservation

def test_conservation_violation_names_the_cluster(debug_invariants):
    sim = small_sim()
    sim.run(DemandMatrix({("default", "west"): 50.0}), duration=0.5)
    gateway = sim.gateways["west"]
    gateway.completed_count += 5   # pretend 5 requests settled twice
    with pytest.raises(InvariantViolation, match="conservation.*'west'"):
        check_request_conservation(sim.gateways)


def test_conservation_detects_untracked_open_requests(debug_invariants):
    sim = small_sim()
    sim.run(DemandMatrix({("default", "west"): 50.0}), duration=0.5)
    gateway = sim.gateways["east"]
    gateway.open_requests += 1     # accept bypassed the counters
    with pytest.raises(InvariantViolation, match="'east'"):
        check_request_conservation(sim.gateways)


# ------------------------------------------------------------ queue depths

def test_negative_pool_depth_fires_with_context():
    pool = ReplicaPool(Simulator(), "auth", "west", replicas=2)
    check_pool_depths(pool)        # healthy pool passes
    pool._busy = -1
    with pytest.raises(InvariantViolation, match="'auth'.*'west'"):
        check_pool_depths(pool)


def test_pool_detects_double_finish(debug_invariants):
    sim = Simulator()
    pool = ReplicaPool(sim, "auth", "west", replicas=1)
    finished = []
    pool.submit(0.01, on_complete=finished.append)
    sim.run()
    assert finished
    # replay the finish event: busy goes negative, the pool notices
    with pytest.raises(InvariantViolation, match="negative queue depth"):
        pool._finish(
            type("Job", (), {"on_complete": staticmethod(lambda now: None)}))


# -------------------------------------------------------------- clean runs

def test_healthy_run_with_invariants_enabled(debug_invariants):
    sim = small_sim(seed=3)
    epochs = []
    sim.run(DemandMatrix({("default", "west"): 80.0,
                          ("default", "east"): 40.0}),
            duration=1.0, epoch=0.25,
            on_epoch=lambda reports, s: epochs.append(len(reports)))
    assert epochs and all(n == 2 for n in epochs)
    assert sim.telemetry.requests
    for gateway in sim.gateways.values():
        assert gateway.open_requests == 0
