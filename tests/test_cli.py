"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig6a" in out and "fig4" in out
    assert "chain" in out and "social" in out


def test_solve_command_prints_rules(capsys):
    assert main(["solve", "--app", "chain", "--west", "650",
                 "--east", "100"]) == 0
    out = capsys.readouterr().out
    assert "status: optimal" in out
    assert "predicted mean latency" in out
    assert "S1 [default] @ west" in out


def test_solve_multiclass_app(capsys):
    assert main(["solve", "--app", "two-class", "--west", "400",
                 "--east", "100", "--replicas", "8"]) == 0
    out = capsys.readouterr().out
    assert "[L]" in out and "[H]" in out


def test_figure_fig3_analytic(capsys):
    assert main(["figure", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "static-threshold" in out
    assert "SLATE (ms)" in out


def test_figure_fig4_analytic(capsys):
    assert main(["figure", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "locally served RPS" in out
    assert "local @ 5ms" in out


def test_figure_simulated_short(capsys):
    assert main(["figure", "fig6a", "--duration", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "latency CDF" in out
    assert "mean-latency ratio" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_solve_render_istio(capsys):
    assert main(["solve", "--app", "chain", "--west", "650",
                 "--render-istio"]) == 0
    out = capsys.readouterr().out
    assert "kind: VirtualService" in out
    assert "kind: DestinationRule" in out
    assert "weight:" in out


def test_obs_timeseries_summary(capsys, tmp_path):
    assert main(["obs", "timeseries", "--figure", "fig6a",
                 "--duration", "5", "--interval", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "scrapes" in out and "request_latency_p99" in out
    snapshot = tmp_path / "ts.json"
    assert main(["obs", "timeseries", "--figure", "fig6a", "--duration", "5",
                 "-o", str(snapshot)]) == 0
    assert "series" in snapshot.read_text()


def test_chaos_run_short(capsys):
    assert main(["chaos", "run", "--duration", "20", "--fault-start", "4",
                 "--fault-duration", "8", "--max-rule-age", "3"]) == 0
    out = capsys.readouterr().out
    assert "controller-outage" in out and "wan:east<->west" in out
    assert "stale-rule guard trips:" in out
    assert "p95" in out


def test_chaos_report_writes_json(capsys, tmp_path):
    payload = tmp_path / "resilience.json"
    assert main(["chaos", "report", "--duration", "20", "--fault-start", "4",
                 "--fault-duration", "8", "--max-rule-age", "3",
                 "-o", str(payload)]) == 0
    out = capsys.readouterr().out
    assert "detect(s)" in out and "egress cost" in out
    text = payload.read_text()
    assert "controller-outage" in text and "episodes" in text


def test_obs_explain_renders_causal_chain(capsys, tmp_path):
    records = tmp_path / "prov.jsonl"
    assert main(["obs", "explain", "default", "--duration", "60",
                 "--table", "-o", str(records)]) == 0
    out = capsys.readouterr().out
    assert "why did traffic for class 'default' shift" in out
    assert "observed:" in out and "decided:" in out and "shipped:" in out
    assert "records=" in out                    # --table printed the ring
    assert records.read_text().strip()


def test_obs_explain_chaos_writes_flight_dump(capsys, tmp_path):
    dump = tmp_path / "flight.jsonl"
    assert main(["obs", "explain", "default", "--scenario", "chaos",
                 "--duration", "30", "--dump", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "flight-recorder snapshots" in out
    text = dump.read_text()
    assert '"reason": "fault"' in text
    assert "chaos-outage" in text               # run stamp for replay


def test_obs_slo_renders_alerts_and_join(capsys):
    # 60 simulated seconds: the surge starts at t=40, so the alert fires
    # but stays active at the end of the run
    assert main(["obs", "slo", "--duration", "60"]) == 0
    out = capsys.readouterr().out
    assert "rule" in out and "latency-250ms" in out
    assert "re-plans" in out


def test_obs_slo_json_document(capsys):
    import json
    assert main(["obs", "slo", "--duration", "60", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["command"] == "slo"
    assert isinstance(document["alerts"], list) and document["alerts"]
    assert document["alerts"][0]["rule"] == "latency-250ms"


def test_obs_forecast_text_and_breach_table(capsys):
    assert main(["obs", "forecast", "--scenario", "slo",
                 "--duration", "60", "--table"]) == 0
    out = capsys.readouterr().out
    assert "series backtested" in out and "MASE" in out
    assert "predicted breaches:" in out


def test_obs_forecast_json_report(capsys, tmp_path):
    import json
    report = tmp_path / "forecast.json"
    assert main(["obs", "forecast", "--scenario", "slo", "--duration", "50",
                 "-o", str(report)]) == 0
    document = json.loads(report.read_text())
    assert document["command"] == "forecast"
    assert document["forecast"]["model"] == "holt"
    assert document["forecast"]["series"]
    assert "prediction_score" in document


def test_obs_forecast_holt_winters_needs_season_on_slo():
    with pytest.raises(SystemExit):
        main(["obs", "forecast", "--scenario", "slo",
              "--model", "holt-winters", "--duration", "20"])


def test_obs_anomalies_json_document(capsys):
    import json
    assert main(["obs", "anomalies", "--scenario", "chaos",
                 "--duration", "30", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["command"] == "anomalies"
    assert document["summary"]["events"] == len(document["events"])
    assert document["events"], "the outage must register anomalies"


def test_obs_anomalies_table_and_exports(capsys, tmp_path):
    events = tmp_path / "anomalies.jsonl"
    signals = tmp_path / "signals.jsonl"
    assert main(["obs", "anomalies", "--scenario", "chaos",
                 "--duration", "30", "--table", "-o", str(events),
                 "--signals-out", str(signals)]) == 0
    out = capsys.readouterr().out
    assert "anomaly events" in out and "detector" in out
    assert events.read_text().strip()
    assert '"topic": "anomaly"' in signals.read_text()


def test_obs_diff_missing_artifact_exits_2(capsys, tmp_path):
    assert main(["obs", "diff", str(tmp_path / "nope.json"),
                 str(tmp_path / "nope2.json")]) == 2
    assert "cannot read artifact" in capsys.readouterr().err


def test_obs_diff_invalid_artifact_exits_2(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("definitely not json{{", encoding="utf-8")
    ok = tmp_path / "ok.json"
    ok.write_text("{}", encoding="utf-8")
    assert main(["obs", "diff", str(bad), str(ok)]) == 2
    assert "invalid artifact" in capsys.readouterr().err
