"""Tests for the Global and Cluster controllers."""

import pytest

from repro.core.controller.cluster_controller import ClusterController
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.core.rules import RoutingRule, RuleSet
from repro.mesh.routing_table import RoutingTable
from repro.mesh.telemetry import ClusterEpochReport, ServiceClassWindow
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.request import Span


def make_deployment(app, replicas=5):
    return DeploymentSpec.uniform(app.services(), ["west", "east"],
                                  replicas=replicas,
                                  latency=two_region_latency(25.0))


def make_report(cluster, ingress_rps, duration=5.0, exec_times=None):
    report = ClusterEpochReport(cluster=cluster, start_time=0.0,
                                duration=duration)
    for cls, rps in ingress_rps.items():
        report.ingress_counts[cls] = int(rps * duration)
    for (service, cls), exec_time in (exec_times or {}).items():
        window = ServiceClassWindow()
        for _ in range(10):
            window.observe(Span(
                request_id=1, traffic_class=cls, service=service,
                cluster=cluster, caller_service=None, caller_cluster=cluster,
                enqueue_time=0.0, start_time=0.0, end_time=exec_time,
                exec_time=exec_time))
        report.service_class[(service, cls)] = window
    return report


class TestClusterController:
    def test_ingest_validates_cluster(self):
        controller = ClusterController("west")
        with pytest.raises(ValueError):
            controller.ingest(make_report("east", {}))

    def test_relay_clears_pending(self):
        controller = ClusterController("west")
        controller.ingest(make_report("west", {"default": 10}))
        assert len(controller.relay()) == 1
        assert controller.relay() == []
        assert controller.reports_relayed == 1

    def test_distribute_filters_by_source_cluster(self):
        controller = ClusterController("west")
        table = RoutingTable()
        rules = RuleSet([
            RoutingRule.make("S1", "c", "west", {"east": 1.0}),
            RoutingRule.make("S1", "c", "east", {"east": 1.0}),
        ])
        installed = controller.distribute(rules, table)
        assert installed == 1
        assert table.weights_for("S1", "c", "west") == {"east": 1.0}
        assert table.weights_for("S1", "c", "east") is None


class TestGlobalController:
    def test_no_plan_before_demand(self):
        app = linear_chain_app()
        controller = GlobalController(app, make_deployment(app))
        assert controller.plan() is None
        assert len(controller.rules()) == 0

    def test_demand_estimation_ewma(self):
        app = linear_chain_app()
        controller = GlobalController(
            app, make_deployment(app),
            GlobalControllerConfig(demand_alpha=0.5))
        controller.observe([make_report("west", {"default": 100.0})])
        assert controller.demand_estimate("default", "west") == pytest.approx(100.0)
        controller.observe([make_report("west", {"default": 200.0})])
        assert controller.demand_estimate("default", "west") == pytest.approx(150.0)

    def test_plan_after_observation(self):
        app = linear_chain_app()
        controller = GlobalController(app, make_deployment(app))
        controller.observe([make_report("west", {"default": 600.0}),
                            make_report("east", {"default": 100.0})])
        result = controller.plan()
        assert result is not None and result.ok
        rules = controller.rules()
        assert rules.rule_for("S1", "default", "west") is not None

    def test_learned_profiles_override_spec(self):
        app = linear_chain_app(exec_time=0.010)
        controller = GlobalController(
            app, make_deployment(app),
            GlobalControllerConfig(learn_profiles=True))
        # telemetry says the service is twice as expensive as the spec
        exec_times = {("S1", "default"): 0.020, ("S2", "default"): 0.020,
                      ("S3", "default"): 0.020}
        controller.observe([make_report("west", {"default": 300.0},
                                        exec_times=exec_times)])
        problem = controller.build_problem()
        spec = problem.workloads["default"].spec
        assert spec.exec_time_of("S1") == pytest.approx(0.020)

    def test_unobserved_services_keep_spec_exec_time(self):
        app = linear_chain_app(exec_time=0.010)
        controller = GlobalController(
            app, make_deployment(app),
            GlobalControllerConfig(learn_profiles=True))
        controller.observe([make_report(
            "west", {"default": 300.0},
            exec_times={("S1", "default"): 0.020})])
        spec = controller.build_problem().workloads["default"].spec
        assert spec.exec_time_of("S1") == pytest.approx(0.020)
        assert spec.exec_time_of("S2") == pytest.approx(0.010)   # spec value

    def test_learn_profiles_off_uses_spec(self):
        app = linear_chain_app(exec_time=0.010)
        controller = GlobalController(
            app, make_deployment(app),
            GlobalControllerConfig(learn_profiles=False))
        controller.observe([make_report(
            "west", {"default": 300.0},
            exec_times={("S1", "default"): 0.050})])
        spec = controller.build_problem().workloads["default"].spec
        assert spec.exec_time_of("S1") == pytest.approx(0.010)

    def test_oracle_matches_manual_problem(self):
        app = linear_chain_app()
        deployment = make_deployment(app)
        demand = DemandMatrix({("default", "west"): 600.0,
                               ("default", "east"): 100.0})
        result = GlobalController.oracle(app, deployment, demand)
        assert result.ok
        assert result.total_demand == 700.0
