"""Critical-path analysis on a hand-built 3-hop cross-cluster trace."""

from __future__ import annotations

import pytest

from repro.obs import (HopBreakdown, build_trace_tree, critical_path,
                       hop_breakdown, trace_summary)
from repro.sim.request import Trace
from repro.sim.topology import two_region_latency

from .test_obs_tracing import make_span, three_hop_spans


def stitched_roots(latency=None):
    trace = Trace(1)
    for span in three_hop_spans():
        trace.add(span)
    # a sibling of C that finishes EARLIER — must stay off the critical path
    trace.add(make_span(service="D", cluster="east", caller_service="B",
                        caller_cluster="east", enqueue=0.12, start=0.12,
                        end=0.18, exec_time=0.06))
    return build_trace_tree(trace, latency=latency)


def test_critical_path_descends_into_last_finishing_child():
    roots = stitched_roots()
    assert len(roots) == 1
    path = critical_path(roots[0])
    assert [n.span.service for n in path] == ["A", "B", "C"]


def test_hop_breakdown_components():
    roots = stitched_roots(latency=two_region_latency(25.0))
    breakdowns = hop_breakdown(critical_path(roots[0]))
    a, b, c = breakdowns
    assert isinstance(a, HopBreakdown)
    # A: local root, blocked on B for most of its 0.5 s
    assert a.cluster == "west" and not a.remote
    assert a.queue_wait == pytest.approx(0.0)
    assert a.exec_time == pytest.approx(0.05)
    assert a.total == pytest.approx(0.5)
    assert a.downstream == pytest.approx(0.45)
    # B: cross-cluster hop, queued 0.02 s, carries the 2x25 ms WAN RTT
    assert b.remote
    assert b.queue_wait == pytest.approx(0.02)
    assert b.wan_rtt == pytest.approx(0.050)
    assert b.total == pytest.approx(0.40 - 0.08)
    # C: leaf — everything is queue + exec, nothing downstream
    assert c.queue_wait == pytest.approx(0.02)
    assert c.exec_time == pytest.approx(0.13)
    assert c.downstream == pytest.approx(0.0, abs=1e-9)
    assert c.as_dict()["service"] == "C"


def test_trace_summary_totals():
    roots = stitched_roots(latency=two_region_latency(25.0))
    summary = trace_summary(roots)
    assert summary["spans"] == 4
    assert summary["roots"] == 1
    assert summary["duration"] == pytest.approx(0.5)
    assert summary["cross_cluster_hops"] == 1
    hops = [entry["hop"] for entry in summary["critical_path"]]
    assert hops == ["A@west", "B@east", "C@east"]
    assert summary["critical_queue"] == pytest.approx(0.04)
    assert summary["critical_exec"] == pytest.approx(0.05 + 0.08 + 0.13)
    # root (intra ingress hop) + B (cross-cluster) + C (intra)
    assert summary["critical_wan"] == pytest.approx(0.0005 + 0.050 + 0.0005)


def test_trace_summary_empty():
    summary = trace_summary([])
    assert summary["spans"] == 0
    assert summary["critical_path"] == []
