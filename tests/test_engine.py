"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_simultaneous_events_run_in_insertion_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=3.0)
    assert seen == ["early"]
    assert sim.now == 3.0   # clock advanced to the horizon
    sim.run()
    assert seen == ["early", "late"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert seen == [1, 2, 3]
    assert sim.now == 3.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.schedule_cancellable(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    handle.cancel()
    sim.run()
    assert seen == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule_cancellable(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_schedule_returns_no_handle():
    """The fire-and-forget fast path allocates no handle."""
    sim = Simulator()
    assert sim.schedule(1.0, lambda: None) is None
    assert sim.schedule_at(2.0, lambda: None) is None
    sim.run()
    assert sim.events_processed == 2


def test_cancellable_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_cancellable(-0.1, lambda: None)


def test_max_events_bounds_execution():
    sim = Simulator()
    seen = []

    def forever():
        seen.append(sim.now)
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=10)
    assert len(seen) == 10


def test_run_until_idle_raises_on_runaway():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5
