"""Tests for application specs and call-tree validation."""

import pytest

from repro.sim.apps import (AppSpec, CallEdge, TrafficClassSpec,
                            anomaly_detection_app, fanout_app,
                            linear_chain_app, two_class_app)
from repro.sim.request import RequestAttributes


def make_class(edges, root="A", **kwargs):
    return TrafficClassSpec(
        name="t", attributes=RequestAttributes.make(root), root_service=root,
        edges=edges, **kwargs)


def test_linear_chain_structure():
    app = linear_chain_app(n_services=3)
    spec = app.classes["default"]
    assert spec.root_service == "S1"
    assert [e.callee for e in spec.edges] == ["S2", "S3"]
    assert app.services() == ["S1", "S2", "S3"]


def test_chain_executions_per_request_all_one():
    spec = linear_chain_app(n_services=4).classes["default"]
    assert spec.executions_per_request() == {
        "S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0}


def test_fanout_multiplies_executions():
    spec = make_class([
        CallEdge("A", "B", calls_per_request=2.0),
        CallEdge("B", "C", calls_per_request=3.0),
    ])
    assert spec.executions_per_request() == {"A": 1.0, "B": 2.0, "C": 6.0}


def test_two_callers_rejected():
    with pytest.raises(ValueError, match="two callers"):
        make_class([CallEdge("A", "C"), CallEdge("B", "C"),
                    CallEdge("A", "B")])


def test_root_as_callee_rejected():
    with pytest.raises(ValueError, match="root"):
        make_class([CallEdge("A", "B"), CallEdge("B", "A2")], root="A2")


def test_unreachable_subtree_rejected():
    with pytest.raises(ValueError, match="not reachable"):
        make_class([CallEdge("X", "Y")], root="A")


def test_self_call_rejected():
    with pytest.raises(ValueError, match="self-call"):
        CallEdge("A", "A")


def test_negative_exec_time_rejected():
    with pytest.raises(ValueError, match="negative exec_time"):
        make_class([CallEdge("A", "B")], exec_time={"B": -0.1})


def test_services_in_bfs_order():
    spec = make_class([CallEdge("A", "B"), CallEdge("A", "C"),
                       CallEdge("B", "D")])
    assert spec.services() == ["A", "B", "C", "D"]


def test_children_map_preserves_edge_order():
    spec = make_class([CallEdge("A", "B"), CallEdge("A", "C")])
    assert [e.callee for e in spec.children_map()["A"]] == ["B", "C"]


def test_app_key_name_mismatch_rejected():
    spec = make_class([CallEdge("A", "B")])
    with pytest.raises(ValueError, match="named"):
        AppSpec(name="x", classes={"wrong": spec})


def test_app_traffic_class_lookup_error_lists_classes():
    app = linear_chain_app()
    with pytest.raises(KeyError, match="default"):
        app.traffic_class("nope")


def test_anomaly_detection_db_response_dominates():
    app = anomaly_detection_app()
    spec = app.classes["default"]
    fr_mp = spec.edges[0]
    mp_db = spec.edges[1]
    assert fr_mp.caller == "FR" and mp_db.callee == "DB"
    # the paper's §4.3 size relationship: DB response ~10x the MP response
    assert mp_db.response_bytes == 10 * fr_mp.response_bytes


def test_two_class_app_heavy_is_heavier():
    app = two_class_app()
    light = app.classes["L"]
    heavy = app.classes["H"]
    assert light.attributes.path != heavy.attributes.path
    for service in app.services():
        assert heavy.exec_time_of(service) > light.exec_time_of(service)


def test_fanout_app_parallel_flag():
    app = fanout_app(width=3, parallel=True)
    spec = app.classes["default"]
    assert "FE" in spec.parallel_fanout
    assert len(spec.children_map()["FE"]) == 3


def test_fanout_width_validation():
    with pytest.raises(ValueError):
        fanout_app(width=0)


def test_union_services_stable_order():
    app = two_class_app(n_services=3)
    assert app.services() == ["S1", "S2", "S3"]
