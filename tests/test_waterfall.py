"""Tests for the Waterfall baseline (Traffic Director / ServiceRouter)."""

import pytest

from repro.baselines.base import PolicyContext
from repro.baselines.waterfall import (WaterfallConfig, WaterfallPolicy,
                                       cascade_loads, waterfall_split)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_class_app, gcp_four_region_latency,
                       two_region_latency)
from repro.sim.topology import ClusterSpec


class TestSplit:
    def proximity(self, clusters):
        # alphabetic proximity stub: everything equidistant
        return {src: [c for c in clusters] for src in clusters}

    def test_under_capacity_all_local(self):
        split = waterfall_split(
            loads={"a": 100.0, "b": 50.0},
            capacities={"a": 200.0, "b": 200.0},
            deployed=["a", "b"],
            proximity={"a": ["b", "a"], "b": ["a", "b"]})
        assert split["a"] == {"a": 1.0}
        assert split["b"] == {"b": 1.0}

    def test_excess_spills_to_nearest_spare(self):
        split = waterfall_split(
            loads={"a": 300.0, "b": 50.0},
            capacities={"a": 200.0, "b": 200.0},
            deployed=["a", "b"],
            proximity={"a": ["b"], "b": ["a"]})
        assert split["a"]["a"] == pytest.approx(200 / 300)
        assert split["a"]["b"] == pytest.approx(100 / 300)

    def test_no_spare_overloads_locally(self):
        split = waterfall_split(
            loads={"a": 300.0, "b": 190.0},
            capacities={"a": 200.0, "b": 200.0},
            deployed=["a", "b"],
            proximity={"a": ["b"], "b": ["a"]})
        # only 10 rps of spare at b; the rest stays local despite overload
        assert split["a"]["b"] == pytest.approx(10 / 300)
        assert split["a"]["a"] == pytest.approx(290 / 300)

    def test_undeployed_source_fails_over_entirely(self):
        split = waterfall_split(
            loads={"x": 100.0},
            capacities={"a": 500.0, "b": 500.0},
            deployed=["a", "b"],
            proximity={"x": ["a", "b"]})
        assert split["x"] == {"a": 1.0}

    def test_undeployed_source_no_spare_dumps_nearest(self):
        split = waterfall_split(
            loads={"x": 100.0, "a": 600.0},
            capacities={"a": 500.0},
            deployed=["a"],
            proximity={"x": ["a"], "a": []})
        assert split["x"] == {"a": 1.0}

    def test_uncoordinated_double_booking(self):
        # two overloaded sources each see the same spare at c
        split = waterfall_split(
            loads={"a": 300.0, "b": 300.0, "c": 0.0},
            capacities={"a": 200.0, "b": 200.0, "c": 150.0},
            deployed=["a", "b", "c"],
            proximity={"a": ["c", "b"], "b": ["c", "a"], "c": []},
            coordinated=False)
        # both dump their full 100 excess on c: 200 total into 150 spare
        assert split["a"]["c"] == pytest.approx(100 / 300)
        assert split["b"]["c"] == pytest.approx(100 / 300)

    def test_coordinated_respects_shared_spare(self):
        split = waterfall_split(
            loads={"a": 300.0, "b": 300.0, "c": 0.0},
            capacities={"a": 200.0, "b": 200.0, "c": 150.0},
            deployed=["a", "b", "c"],
            proximity={"a": ["c", "b"], "b": ["c", "a"], "c": []},
            coordinated=True)
        sent_to_c = (split["a"].get("c", 0) * 300
                     + split["b"].get("c", 0) * 300)
        assert sent_to_c == pytest.approx(150.0)

    def test_empty_deployment_rejected(self):
        with pytest.raises(ValueError):
            waterfall_split({}, {}, [], {})


class TestConfig:
    def test_capacity_from_deployment(self):
        app = linear_chain_app(exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        config = WaterfallConfig.from_deployment(app, deployment,
                                                 threshold_rho=0.8)
        # 0.8 * 5 replicas / 10ms = 400 rps
        assert config.capacity("S1", "west") == pytest.approx(400.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WaterfallConfig({("S", "west"): -1.0})

    def test_threshold_validation(self):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        with pytest.raises(ValueError):
            WaterfallConfig.from_deployment(app, deployment, threshold_rho=0)


class TestCascade:
    def test_chain_load_propagates(self):
        app = linear_chain_app(n_services=3, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("default", "west"): 300.0})
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        split, offered = cascade_loads(app, deployment, demand, config)
        # all under threshold: everything local and each service sees 300
        for service in ("S1", "S2", "S3"):
            assert offered[service]["west"] == pytest.approx(300.0)
            assert split[service]["west"] == {"west": 1.0}

    def test_spill_at_parent_moves_child_origin(self):
        app = linear_chain_app(n_services=2, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("default", "west"): 500.0})
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        split, offered = cascade_loads(app, deployment, demand, config)
        # S1 spills 100 east; S2 calls then originate 400 west, 100 east
        assert offered["S2"]["west"] == pytest.approx(400.0)
        assert offered["S2"]["east"] == pytest.approx(100.0)

    def test_missing_service_fails_over(self):
        app = linear_chain_app(n_services=2, exec_time=0.010)
        deployment = DeploymentSpec(
            clusters=[ClusterSpec("west", {"S1": 5}),
                      ClusterSpec("east", {"S1": 5, "S2": 5})],
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("default", "west"): 100.0})
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        split, _ = cascade_loads(app, deployment, demand, config)
        assert split["S2"]["west"] == {"east": 1.0}

    def test_class_blind_same_split_for_all_classes(self):
        app = two_class_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=8,
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("L", "west"): 400.0, ("H", "west"): 150.0})
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        policy = WaterfallPolicy(config)
        ctx = PolicyContext(app, deployment, demand)
        rules = policy.compute_rules(ctx)
        rule = rules.rule_for("S1", "*", "west")
        assert rule is not None   # one wildcard rule, not per-class rules
        assert rules.rule_for("S1", "L", "west") is None

    def test_gcp_greedy_dogpiles_ut(self):
        # the §4.2 pathology: OR and IOW both spill to UT, nothing to SC
        app = linear_chain_app(n_services=3, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["OR", "UT", "IOW", "SC"], replicas=5,
            latency=gcp_four_region_latency())
        demand = DemandMatrix({("default", "OR"): 590.0,
                               ("default", "IOW"): 590.0,
                               ("default", "UT"): 100.0,
                               ("default", "SC"): 100.0})
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        split, _ = cascade_loads(app, deployment, demand, config,
                                 coordinated=False)
        for src in ("OR", "IOW"):
            assert split["S1"][src].get("UT", 0) > 0
            assert split["S1"][src].get("SC", 0) == 0


class TestPolicy:
    def test_adaptive_recomputes_from_reports(self):
        from repro.mesh.telemetry import ClusterEpochReport
        app = linear_chain_app(exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        policy = WaterfallPolicy(config, adaptive=True)
        ctx = PolicyContext(app, deployment,
                            DemandMatrix({("default", "west"): 100.0}))
        report = ClusterEpochReport(cluster="west", start_time=0.0,
                                    duration=5.0,
                                    ingress_counts={"default": 2500})
        rules = policy.on_epoch([report], ctx)
        # observed 500 rps > 400 threshold: the refreshed rules spill
        assert rules is not None
        assert rules.rule_for("S1", "*", "west").weight_map().get(
            "east", 0) > 0

    def test_static_policy_ignores_epochs(self):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        policy = WaterfallPolicy(config, adaptive=False)
        ctx = PolicyContext(app, deployment, DemandMatrix())
        assert policy.on_epoch([], ctx) is None
