"""Synthetic planet-scale instance generators (D01: registry-seeded)."""

import pytest

from repro.experiments.scenarios import (planet_scale_problem,
                                         synthetic_te_problem,
                                         synthetic_topology)


class TestSyntheticTopology:
    def test_deterministic_across_calls(self):
        first = synthetic_topology(12, seed=3)
        second = synthetic_topology(12, seed=3)
        assert list(first.clusters) == list(second.clusters)
        for a in first.clusters:
            for b in first.clusters:
                assert first.one_way(a, b) == second.one_way(a, b)

    def test_seed_changes_delays(self):
        base = synthetic_topology(6, seed=0)
        other = synthetic_topology(6, seed=1)
        assert any(
            base.one_way(a, b) != other.one_way(a, b)
            for a in base.clusters for b in base.clusters if a != b)

    def test_names_sort_as_indices(self):
        names = list(synthetic_topology(12).clusters)
        assert names == sorted(names)
        assert names[0] == "c000" and names[-1] == "c011"

    def test_delays_respect_base(self):
        latency = synthetic_topology(5, base_delay_ms=5.0)
        for a in latency.clusters:
            for b in latency.clusters:
                if a != b:
                    assert latency.one_way(a, b) >= 0.005

    def test_validation(self):
        with pytest.raises(ValueError, match="n_clusters"):
            synthetic_topology(0)


class TestSyntheticProblem:
    def test_deterministic(self):
        first = synthetic_te_problem(8, 3, 4, seed=2, replication=0.5,
                                     ingresses_per_class=2)
        second = synthetic_te_problem(8, 3, 4, seed=2, replication=0.5,
                                      ingresses_per_class=2)
        assert first.replicas == second.replicas
        for name in first.workloads:
            assert first.workloads[name].demand == \
                second.workloads[name].demand

    def test_full_replication_and_demand(self):
        problem = synthetic_te_problem(4, 3, 2)
        for service in ("svc0", "svc1", "svc2"):
            assert problem.deployed_in(service) == problem.clusters
        for workload in problem.workloads.values():
            assert set(workload.demand) == set(problem.clusters)

    def test_partial_replication_thins_placement(self):
        problem = synthetic_te_problem(10, 3, 2, replication=0.3)
        for service in ("svc0", "svc1", "svc2"):
            assert len(problem.deployed_in(service)) == 3

    def test_sparse_demand(self):
        problem = synthetic_te_problem(10, 3, 4, ingresses_per_class=2)
        for workload in problem.workloads.values():
            assert len(workload.demand) == 2

    def test_auto_replicas_leave_headroom(self):
        problem = synthetic_te_problem(6, 3, 2, headroom=2.0)
        # busy replicas required per second, summed over every pool
        required = sum(
            w.total_demand * w.spec.exec_time[s]
            for w in problem.workloads.values()
            for s in w.spec.services())
        provisioned = sum(problem.replica_count("svc0", c)
                          for c in problem.clusters) * 3
        assert provisioned >= required * 1.9

    def test_validation(self):
        with pytest.raises(ValueError, match="replication"):
            synthetic_te_problem(4, 2, 1, replication=0.0)
        with pytest.raises(ValueError, match="ingresses_per_class"):
            synthetic_te_problem(4, 2, 1, ingresses_per_class=9)


def test_planet_scale_problem_shape():
    problem = planet_scale_problem(n_clusters=20, n_services=4,
                                   n_classes=30)
    assert len(problem.clusters) == 20
    assert len(problem.workloads) == 30
    for workload in problem.workloads.values():
        assert len(workload.demand) == 2
    assert len(problem.deployed_in("svc0")) == 4   # 20% of the fleet
