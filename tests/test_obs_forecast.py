"""Tests for the forecast engine and predictive SLO breach alerts."""

import json

import pytest

from repro.obs import (ForecastEngine, BreachPredictor, SignalBus,
                       TOPIC_FORECAST, TOPIC_PREDICTED_BREACH,
                       TimeSeriesStore, make_model, score_predictions)
from repro.obs.alerts import AlertLog
from repro.obs.slo import default_latency_slo


# ------------------------------------------------------------- make_model

def test_make_model_by_name():
    from repro.forecasting import (EwmaForecaster, HoltForecaster,
                                   HoltWintersForecaster)
    assert isinstance(make_model("ewma"), EwmaForecaster)
    assert isinstance(make_model("holt"), HoltForecaster)
    assert isinstance(make_model("holt-winters", season_length=6),
                      HoltWintersForecaster)


def test_make_model_validation():
    with pytest.raises(ValueError):
        make_model("arima")
    with pytest.raises(ValueError):
        make_model("holt-winters", season_length=1)


# -------------------------------------------------------- forecast engine

def drive(store, engine, values, name, kind="gauge", start=0.0, **labels):
    now = start
    for value in values:
        store.record(name, now, value, **labels)
        engine.sample(now)
        now += 1.0
    return now


def test_engine_records_forecast_series_and_publishes():
    bus = SignalBus()
    store = TimeSeriesStore()
    engine = ForecastEngine(store, bus=bus, model="holt", horizon=3,
                            targets=(("load", "gauge"),))
    drive(store, engine, [float(10 * i) for i in range(1, 8)], "load",
          cluster="west")
    forecast_series = store.series("forecast_load", cluster="west")
    assert forecast_series is not None and len(forecast_series) > 0
    # a rising ramp forecast 3 steps out must exceed the last observation
    assert forecast_series.last[1] > 70.0
    # one aggregated signal per tick that produced forecasts
    signals = bus.history(TOPIC_FORECAST)
    assert signals
    payload = signals[-1].payload
    assert payload["model"] == "holt" and payload["horizon"] == 3
    assert "load{cluster=west}" in payload["forecasts"]


def test_engine_differences_counter_targets():
    store = TimeSeriesStore()
    engine = ForecastEngine(store, targets=(("bytes_total", "counter"),))
    # cumulative counter growing 50/s: the engine should forecast the rate
    drive(store, engine, [50.0 * i for i in range(1, 12)], "bytes_total")
    backtests = engine.backtests()
    assert "bytes_total" in backtests
    assert engine.tracker.forecast(("bytes_total", ()), 1) \
        == pytest.approx(50.0, rel=0.05)


def test_engine_backtests_and_summary():
    store = TimeSeriesStore()
    engine = ForecastEngine(store, targets=(("load", "gauge"),))
    drive(store, engine, [5.0, 6.0, 7.0, 8.0], "load")
    summary = engine.summary()
    assert summary["model"] == "holt" and summary["samples"] == 4
    (sid, score), = summary["series"].items()
    assert sid == "load" and score["evaluations"] == 3


def test_engine_validation():
    with pytest.raises(ValueError):
        ForecastEngine(TimeSeriesStore(), horizon=0)


# ------------------------------------------------------- breach predictor

class _FakeRuleState:
    def __init__(self):
        self.firing = False


class _FakeSloEngine:
    def __init__(self, rules):
        self.rules = tuple(rules)
        self._states = {rule.name: _FakeRuleState() for rule in self.rules}

    def state(self, name):
        return self._states[name]


def make_predictor(horizon=10):
    rule = default_latency_slo()          # fast_burn 4.0, slow_burn 1.0
    store = TimeSeriesStore()
    alerts = AlertLog()
    engine = _FakeSloEngine([rule])
    bus = SignalBus()
    predictor = BreachPredictor(engine, store, alerts, bus=bus,
                                interval=1.0, horizon=horizon)
    return rule, store, alerts, engine, bus, predictor


def burn(store, rule, now, fast, slow):
    store.record("slo_burn_rate", now, fast, slo=rule.name, window="fast")
    store.record("slo_burn_rate", now, slow, slo=rule.name, window="slow")


def test_rising_burn_produces_prediction_then_hit():
    rule, store, alerts, _, bus, predictor = make_predictor()
    for tick, (fast, slow) in enumerate([(0.5, 0.2), (1.5, 0.5),
                                         (2.5, 0.8), (3.5, 1.1)]):
        burn(store, rule, float(tick), fast, slow)
        predictor.sample(float(tick))
    assert len(predictor.predictions) == 1
    prediction = predictor.predictions[0]
    assert prediction.outcome == "open" and prediction.active
    assert prediction.breach_eta > prediction.fired_at
    assert prediction.lead_estimate > 0
    assert bus.history(TOPIC_PREDICTED_BREACH)
    # the real alert fires two ticks later: the prediction settles as a hit
    alerts.fire(rule.name, "latency", 5.0, 4.2, 1.3)
    burn(store, rule, 5.0, 4.2, 1.3)
    predictor.sample(5.0)
    assert prediction.outcome == "hit"
    assert prediction.actual_fired_at == 5.0
    assert prediction.actual_lead == pytest.approx(5.0 - prediction.fired_at)
    score = predictor.score()
    assert score.hits == 1 and score.misses == 0
    assert score.precision == 1.0 and score.recall == 1.0
    assert score.mean_lead_seconds > 0


def test_unmatched_prediction_expires_as_miss():
    rule, store, alerts, _, _, predictor = make_predictor(horizon=5)
    for tick, (fast, slow) in enumerate([(0.5, 0.2), (1.5, 0.5),
                                         (2.5, 0.8), (3.5, 1.1)]):
        burn(store, rule, float(tick), fast, slow)
        predictor.sample(float(tick))
    (prediction,) = predictor.predictions
    # burn collapses; no alert ever fires; run the clock past the grace
    for tick in range(4, 25):
        burn(store, rule, float(tick), 0.1, 0.1)
        predictor.sample(float(tick))
    assert prediction.outcome == "miss"
    assert predictor.score().precision == 0.0


def test_no_projection_while_rule_is_firing():
    rule, store, alerts, engine, _, predictor = make_predictor()
    engine.state(rule.name).firing = True
    for tick in range(6):
        burn(store, rule, float(tick), 5.0 + tick, 2.0 + tick)
        predictor.sample(float(tick))
    assert len(predictor.predictions) == 0


def test_min_observations_gate():
    rule, store, _, _, _, predictor = make_predictor()
    burn(store, rule, 0.0, 3.9, 0.9)
    burn(store, rule, 1.0, 3.95, 0.95)
    for tick in range(2):
        predictor.sample(float(tick))
    assert len(predictor.predictions) == 0


def test_predictor_jsonl_and_validation():
    rule, store, alerts, engine, _, predictor = make_predictor()
    assert predictor.to_jsonl_lines() == [] and len(predictor) == 0
    with pytest.raises(ValueError):
        BreachPredictor(engine, store, alerts, horizon=0)


def test_score_predictions_empty_run_is_perfect():
    score = score_predictions([], AlertLog())
    assert score.precision == 1.0 and score.recall == 1.0
    assert score.predictions == 0 and score.alerts_total == 0


def test_predicted_breach_is_alert_shaped():
    """join_alerts_decisions and provenance only need the Alert duck."""
    rule, store, alerts, _, _, predictor = make_predictor()
    for tick, (fast, slow) in enumerate([(0.5, 0.2), (1.5, 0.5),
                                         (2.5, 0.8), (3.5, 1.1)]):
        burn(store, rule, float(tick), fast, slow)
        predictor.sample(float(tick))
    (prediction,) = predictor.predictions
    assert prediction.overlaps(prediction.fired_at + 0.5)
    assert not prediction.overlaps(prediction.fired_at - 0.5)
    payload = json.loads(predictor.to_jsonl_lines()[0])
    assert payload["rule"] == rule.name
    assert payload["kind"].startswith("pred-")
    assert payload["outcome"] == "open"


# ------------------------------------------------------------ end-to-end

def test_breach_predicted_before_real_alert_e2e():
    """ISSUE acceptance: on slo_burnrate a PredictedBreach precedes the
    actual alert, with a measured positive lead time."""
    from repro.experiments import scenarios as sc
    from repro.experiments.harness import run_policy
    from repro.obs import Observability
    setup = sc.slo_burnrate_setup(duration=80.0, seed=42)
    obs = Observability(setup.observability(forecast=True, anomaly=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    alerts = list(obs.alerts)
    assert alerts, "scenario must fire at least one real alert"
    hits = [p for p in obs.breach.predictions if p.outcome == "hit"]
    assert hits, "the predictor must anticipate the breach"
    prediction = hits[0]
    assert prediction.fired_at < prediction.actual_fired_at
    score = obs.breach.score()
    assert score.hits >= 1 and score.mean_lead_seconds > 0
    # the forecast engine backtested real series while it ran
    assert obs.forecast.backtests()
