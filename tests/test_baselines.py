"""Tests for the non-Waterfall baseline policies."""

import pytest

from repro.baselines.base import PolicyContext
from repro.baselines.local_only import LocalOnlyPolicy
from repro.baselines.locality import LocalityFailoverPolicy
from repro.baselines.static_split import StaticSplitPolicy
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.network import LatencyMatrix
from repro.sim.topology import ClusterSpec


def three_cluster_ctx():
    latency = LatencyMatrix.from_ms(["west", "mid", "east"], {
        ("west", "mid"): 10.0, ("mid", "east"): 10.0, ("west", "east"): 30.0,
    })
    app = linear_chain_app(n_services=2)
    deployment = DeploymentSpec(
        clusters=[
            ClusterSpec("west", {"S1": 2}),             # S2 missing here
            ClusterSpec("mid", {"S1": 2, "S2": 2}),
            ClusterSpec("east", {"S1": 2, "S2": 2}),
        ],
        latency=latency)
    return PolicyContext(app, deployment, DemandMatrix())


def test_local_only_emits_local_rules_where_deployed():
    ctx = three_cluster_ctx()
    rules = LocalOnlyPolicy().compute_rules(ctx)
    assert rules.rule_for("S1", "*", "west").weight_map() == {"west": 1.0}
    # S2 not in west: no rule (proxy default handles it)
    assert rules.rule_for("S2", "*", "west") is None


def test_locality_failover_routes_to_nearest():
    ctx = three_cluster_ctx()
    rules = LocalityFailoverPolicy().compute_rules(ctx)
    # S2 missing in west; mid is nearer than east
    assert rules.rule_for("S2", "*", "west").weight_map() == {"mid": 1.0}
    assert rules.rule_for("S2", "*", "mid").weight_map() == {"mid": 1.0}


def test_static_split_applies_configured_weights():
    ctx = three_cluster_ctx()
    policy = StaticSplitPolicy(splits={
        "west": {"west": 0.5, "mid": 0.5},
        "mid": {"mid": 1.0},
        "east": {"east": 1.0},
    })
    rules = policy.compute_rules(ctx)
    assert rules.rule_for("S1", "*", "west").weight_map() == pytest.approx(
        {"west": 0.5, "mid": 0.5})
    # S2 does not exist in west: its weight is filtered, rest renormalised
    assert rules.rule_for("S2", "*", "west").weight_map() == {"mid": 1.0}


def test_static_split_per_service_override():
    ctx = three_cluster_ctx()
    policy = StaticSplitPolicy(
        splits={"mid": {"mid": 1.0}},
        per_service={"S2": {"mid": {"east": 1.0}}})
    rules = policy.compute_rules(ctx)
    assert rules.rule_for("S1", "*", "mid").weight_map() == {"mid": 1.0}
    assert rules.rule_for("S2", "*", "mid").weight_map() == {"east": 1.0}


def test_policies_are_static():
    ctx = three_cluster_ctx()
    for policy in (LocalOnlyPolicy(), LocalityFailoverPolicy(),
                   StaticSplitPolicy(splits={})):
        assert policy.on_epoch([], ctx) is None


def test_nearest_clusters_ordering():
    ctx = three_cluster_ctx()
    assert ctx.nearest_clusters("west", ["mid", "east"]) == ["mid", "east"]
    assert ctx.nearest_clusters("west", ["west", "east"])[0] == "west"
