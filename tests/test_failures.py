"""Failure-injection tests: partial replication born at runtime (§2).

Clusters lose services mid-run; proxies must fail over immediately and the
adaptive controller must re-plan around the hole.
"""

import pytest

from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation


def make_sim(seed=9):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    return app, deployment, MeshSimulation(app, deployment, seed=seed)


def test_fail_unknown_service_rejected():
    _, _, sim = make_sim()
    with pytest.raises(KeyError):
        sim.fail_service("west", "nope")


def test_failure_updates_deployment_view():
    _, deployment, sim = make_sim()
    sim.fail_service("west", "S2")
    assert deployment.clusters_with("S2") == ["east"]
    assert not sim.clusters["west"].has("S2")


def test_traffic_fails_over_after_failure():
    app, _, sim = make_sim()
    sim.sim.schedule(5.0, sim.fail_service, "west", "S3")
    sim.run(DemandMatrix({("default", "west"): 100.0}), duration=15.0)
    # before t=5: all local, no egress; after: S2->S3 crosses to east
    assert sim.network.ledger.total_bytes > 0
    reports = {r.cluster: r for r in sim.harvest_reports()}
    assert reports["east"].service_rps("S3", "default") > 0


def test_in_flight_requests_at_failed_service_are_lost():
    app, _, sim = make_sim()
    sim.sim.schedule(5.0, sim.fail_service, "west", "S3")
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=15.0)
    incomplete = [r for r in sim.telemetry.requests if not r.done]
    # telemetry.requests only holds completed ones; cross-check via counts
    total_generated = sum(
        r.ingress_counts.get("default", 0)
        for r in sim.harvest_reports())
    # some requests were in flight at S3 west when it died
    assert len(sim.telemetry.requests) < 200 * 15
    assert incomplete == []   # completed list contains only completed


def test_restore_brings_traffic_back_local():
    app, deployment, sim = make_sim()
    sim.fail_service("west", "S2")
    sim.sim.schedule(5.0, sim.restore_service, "west", "S2", 5)
    sim.run(DemandMatrix({("default", "west"): 100.0}), duration=15.0)
    assert deployment.clusters_with("S2") == ["west", "east"]
    reports = {r.cluster: r for r in sim.harvest_reports()}
    # after restore, local S2 serves again
    assert reports["west"].service_rps("S2", "default") > 0


def test_restore_validation():
    _, _, sim = make_sim()
    with pytest.raises(ValueError):
        sim.restore_service("west", "S2", 0)


def test_restore_never_failed_service_resizes_pool():
    # restoring a healthy service is a resize, not an error
    _, deployment, sim = make_sim()
    assert sim.clusters["west"].pool("S2").replicas == 5
    sim.restore_service("west", "S2", 8)
    assert sim.clusters["west"].pool("S2").replicas == 8
    assert deployment.cluster("west").replicas["S2"] == 8
    assert deployment.clusters_with("S2") == ["west", "east"]


def test_double_restore_is_idempotent():
    _, deployment, sim = make_sim()
    sim.fail_service("west", "S2")
    sim.restore_service("west", "S2", 5)
    pool_after_first = sim.clusters["west"].pool("S2")
    sim.restore_service("west", "S2", 5)
    # second restore keeps the same live pool (no queued-job loss)
    assert sim.clusters["west"].pool("S2") is pool_after_first
    assert pool_after_first.replicas == 5
    assert deployment.cluster("west").replicas["S2"] == 5


def test_restore_with_different_replica_count():
    _, deployment, sim = make_sim()
    sim.fail_service("west", "S2")
    sim.restore_service("west", "S2", 2)   # degraded comeback
    assert sim.clusters["west"].pool("S2").replicas == 2
    assert deployment.cluster("west").replicas["S2"] == 2
    sim.restore_service("west", "S2", 9)   # scale-up later
    assert sim.clusters["west"].pool("S2").replicas == 9
    assert deployment.cluster("west").replicas["S2"] == 9


def test_restore_keeps_clusters_with_consistent():
    _, deployment, sim = make_sim()
    sim.fail_service("west", "S2")
    assert deployment.clusters_with("S2") == ["east"]
    sim.restore_service("west", "S2", 1)
    # deployment view and live pools must agree after every transition
    assert deployment.clusters_with("S2") == ["west", "east"]
    assert sim.clusters["west"].has("S2")
    sim.fail_service("west", "S2")
    assert deployment.clusters_with("S2") == ["east"]
    assert not sim.clusters["west"].has("S2")


def test_adaptive_controller_replans_around_failure():
    app, deployment, sim = make_sim()
    controller = GlobalController(
        app, deployment, GlobalControllerConfig(learn_profiles=False))

    def on_epoch(reports, simulation):
        controller.observe(reports)
        result = controller.plan()
        if result is not None:
            result.rules().apply(simulation.table)

    sim.sim.schedule(6.0, sim.fail_service, "west", "S3")
    sim.run(DemandMatrix({("default", "west"): 200.0,
                          ("default", "east"): 50.0}),
            duration=20.0, epoch=3.0, on_epoch=on_epoch)
    result = controller.last_result
    assert result is not None and result.ok
    # the final plan routes no S3 work to west
    assert result.pool_load.get(("S3", "west"), 0.0) == 0.0
    assert result.pool_load[("S3", "east")] > 0.0
