"""Hybrid-fidelity simulation: the fluid substrate (ISSUE 10).

Covers the tentpole acceptance surface:

* same-seed determinism — fluid-mode end state is byte-identical across
  runs (counters, egress ledger, pool busy-time), and hybrid-mode
  sampled latencies are too;
* conservation — every bulk-admitted request is settled at quiesce
  (``admitted == completed + failed``, no open requests), flows are
  non-negative, and routing-matrix rows are probability rows;
* fidelity parity — hybrid sampled-slice p95 stays within a band of the
  event-level run on the same scenario, and fluid-mode egress matches
  event-level egress;
* the ``fidelity`` knob on :func:`run_policy` / ``repro run``;
* the fluid model agrees with the standalone analytic fluid model
  (:func:`repro.analysis.fluid.evaluate_rules`) on offered pool work;
* devtools coverage — the D02 wall-clock lint and the runtime invariant
  helpers apply to the fluid tick loop, and the A04 layering contract
  pins ``repro.sim.fluid`` below obs/chaos.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.fluid import evaluate_rules
from repro.core import RuleSet
from repro.devtools.invariants import (InvariantViolation, check_fluid_rates,
                                       check_fluid_tick,
                                       check_routing_matrix)
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import diurnal_control_setup, fig6a_how_much
from repro.obs.timeseries import percentile
from repro.sim import (DemandMatrix, DeploymentSpec, MeshSimulation,
                       linear_chain_app, two_region_latency)


def small_world(replicas: int = 5):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    return app, deployment


def west_heavy_demand() -> DemandMatrix:
    # west beyond local capacity => offload => non-zero egress
    return DemandMatrix({("default", "west"): 650.0,
                         ("default", "east"): 100.0})


def run_sim(fidelity: str, seed: int = 42, duration: float = 10.0,
            **kwargs) -> MeshSimulation:
    app, deployment = small_world(replicas=8)
    sim = MeshSimulation(app, deployment, seed=seed, fidelity=fidelity,
                         **kwargs)
    sim.run(west_heavy_demand(), duration)
    return sim


def state_signature(sim: MeshSimulation) -> str:
    """A byte-comparable digest of everything a run mutates."""
    return json.dumps({
        "gateways": {name: [g.admitted_count, g.completed_count,
                            g.failed_count, g.open_requests]
                     for name, g in sorted(sim.gateways.items())},
        "egress_bytes": sim.network.ledger.total_bytes,
        "egress_cost": sim.network.ledger.total_cost,
        "busy": {f"{cname}/{sname}": pool.lifetime_busy_seconds
                 for cname, cluster in sorted(sim.clusters.items())
                 for sname, pool in sorted(cluster.pools.items())},
        "latencies": sim.telemetry.latencies(),
        "ticks": sim.fluid.ticks if sim.fluid is not None else 0,
    }, sort_keys=True)


# ------------------------------------------------------------ determinism


def test_fluid_same_seed_is_byte_identical():
    first = state_signature(run_sim("fluid"))
    second = state_signature(run_sim("fluid"))
    assert first == second


def test_hybrid_same_seed_is_byte_identical():
    first = run_sim("hybrid", sample_rate=0.1)
    second = run_sim("hybrid", sample_rate=0.1)
    assert state_signature(first) == state_signature(second)
    assert first.telemetry.latencies() == second.telemetry.latencies()


def test_different_seeds_diverge_in_hybrid():
    first = run_sim("hybrid", seed=1, sample_rate=0.1)
    second = run_sim("hybrid", seed=2, sample_rate=0.1)
    assert first.telemetry.latencies() != second.telemetry.latencies()


# ----------------------------------------------------------- conservation


@pytest.mark.parametrize("fidelity", ["fluid", "hybrid"])
def test_bulk_admissions_are_conserved_at_quiesce(fidelity):
    sim = run_sim(fidelity)
    for name, gateway in sim.gateways.items():
        assert gateway.admitted_count > 0, name
        assert gateway.open_requests == 0, name
        assert (gateway.admitted_count
                == gateway.completed_count + gateway.failed_count), name


def test_fluid_solution_flows_are_nonnegative_probability_rows():
    sim = run_sim("fluid")
    solution = sim.fluid.last_solution
    assert solution is not None
    for state in solution.per_class.values():
        assert all(rate >= 0 for rate in state.demand)
        for rates in state.exec_rates.values():
            assert all(rate >= 0 for rate in rates)
        assert state.failed_rate >= 0
    model = sim.fluid.model
    for service in sim.app.services():
        matrix = model.routing_matrix(service, "default")
        for row in matrix:
            assert all(float(w) >= 0 for w in row)
            assert abs(sum(float(w) for w in row) - 1.0) <= 1e-9


def test_overload_sheds_as_failures_not_negative_flow():
    app, deployment = small_world(replicas=2)   # capacity 200 rps/cluster
    sim = MeshSimulation(app, deployment, seed=7, fidelity="fluid")
    sim.run(DemandMatrix({("default", "west"): 900.0}), 10.0)
    west = sim.gateways["west"]
    assert west.failed_count > 0
    assert west.open_requests == 0
    assert west.admitted_count == west.completed_count + west.failed_count


# -------------------------------------------------------- fidelity parity


def test_hybrid_p95_tracks_event_level_truth():
    setup = diurnal_control_setup(base_rps=150.0, duration=30.0,
                                  replicas=5)
    event = run_policy(setup.scenario, setup.policy,
                       timeline=setup.timeline)
    setup = diurnal_control_setup(base_rps=150.0, duration=30.0,
                                  replicas=5)
    hybrid = run_policy(setup.scenario, setup.policy,
                        timeline=setup.timeline, fidelity="hybrid",
                        sample_rate=0.25)
    event_p95 = percentile(event.latencies, 0.95)
    hybrid_p95 = percentile(hybrid.latencies, 0.95)
    assert event_p95 > 0 and hybrid.latencies
    assert abs(hybrid_p95 - event_p95) / event_p95 <= 0.25


def test_fluid_egress_matches_event_level():
    setup = fig6a_how_much(duration=15.0)
    slate = setup.policies[-1]
    event = run_policy(setup.scenario, slate)
    fluid = run_policy(setup.scenario, slate, fidelity="fluid")
    assert event.egress_bytes > 0
    assert fluid.latencies == []          # bulk flows sample nothing
    relative = abs(fluid.egress_bytes
                   - event.egress_bytes) / event.egress_bytes
    assert relative <= 0.05


# ---------------------------------------------------------- fidelity knob


def test_run_policy_fidelity_knob_threads_through():
    setup = fig6a_how_much(duration=6.0)
    outcome = run_policy(setup.scenario, setup.policies[-1],
                         fidelity="hybrid", sample_rate=0.2,
                         fluid_tick=0.05)
    assert outcome.latencies


def test_unknown_fidelity_rejected():
    app, deployment = small_world()
    with pytest.raises(ValueError, match="fidelity"):
        MeshSimulation(app, deployment, fidelity="quantum")


def test_fluid_fidelity_requires_pool_service_model():
    app, deployment = small_world()
    with pytest.raises(ValueError, match="service_model"):
        MeshSimulation(app, deployment, fidelity="fluid",
                       service_model="replicas")


@pytest.mark.parametrize("kwargs", [{"sample_rate": 0.0},
                                    {"sample_rate": 1.5},
                                    {"fluid_tick": 0.0}])
def test_invalid_fluid_parameters_rejected(kwargs):
    app, deployment = small_world()
    with pytest.raises(ValueError):
        MeshSimulation(app, deployment, fidelity="hybrid", **kwargs)


# ----------------------------------------- agreement with analytic model


def test_fluid_pool_work_matches_analytic_fluid_model():
    app, deployment = small_world(replicas=8)
    demand = west_heavy_demand()
    sim = MeshSimulation(app, deployment, seed=42, fidelity="fluid")
    sim.run(demand, 5.0)
    prediction = evaluate_rules(app, deployment, demand, RuleSet())
    solution = sim.fluid.last_solution
    for key, work in prediction.pool_work.items():
        assert solution.pool_offered.get(key, 0.0) == pytest.approx(
            work, rel=1e-6), key


# --------------------------------------------------- devtools integration


def test_check_fluid_tick_rejects_backwards_time():
    check_fluid_tick(1.0, 1.0)
    check_fluid_tick(1.0, 2.0)
    with pytest.raises(InvariantViolation, match="monotonicity"):
        check_fluid_tick(2.0, 1.0)


def test_check_routing_matrix_rejects_bad_rows():
    check_routing_matrix("svc", "default", [[0.5, 0.5], [0.0, 1.0]])
    with pytest.raises(InvariantViolation, match="sums to"):
        check_routing_matrix("svc", "default", [[0.5, 0.4]])
    with pytest.raises(InvariantViolation, match="invalid weight"):
        check_routing_matrix("svc", "default", [[1.5, -0.5]])


def test_check_fluid_rates_rejects_negative_and_nan():
    check_fluid_rates("default", [0.0, 1.5])
    with pytest.raises(InvariantViolation):
        check_fluid_rates("default", [1.0, -0.1])
    with pytest.raises(InvariantViolation):
        check_fluid_rates("default", [float("nan")])


def test_d02_wall_clock_lint_covers_fluid_tick_loop():
    from repro.devtools.lint import Linter
    source = ("import time\n"
              "def tick():\n"
              "    return time.time()\n")
    findings = Linter().lint_source(
        source, "src/repro/sim/fluid/substrate.py")
    assert any(f.rule == "D02" for f in findings)


def test_a04_layering_pins_fluid_below_obs_and_chaos():
    from repro.devtools.flow.contracts import LayerSpec
    rules = {rule.package: rule for rule in LayerSpec.default().rules}
    assert "repro.sim.fluid" in rules
    forbidden = rules["repro.sim.fluid"].forbid
    assert "repro.obs" in forbidden and "repro.chaos" in forbidden


def test_fluid_package_has_no_eager_obs_or_chaos_imports():
    """Static check: no fluid module imports obs/chaos at module level."""
    import ast
    from pathlib import Path
    import repro.sim.fluid as fluid_pkg
    package_dir = Path(fluid_pkg.__file__).parent
    for path in sorted(package_dir.glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:                  # top level only: eager
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            for name in names:
                assert not name.startswith(("repro.obs", "repro.chaos")), (
                    f"{path.name} eagerly imports {name}")


# ------------------------------------------------------------------- CLI


def test_cli_run_emits_fidelity_in_json(capsys):
    from repro.cli import main
    code = main(["run", "--scenario", "constant", "--fidelity", "fluid",
                 "--rps", "200", "--duration", "5", "--epoch", "2.5",
                 "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["fidelity"] == "fluid"
    assert document["sampled_latency"]["count"] == 0
    assert document["offered_requests"] == 2000.0


def test_cli_run_hybrid_reports_percentiles(capsys):
    from repro.cli import main
    code = main(["run", "--scenario", "diurnal", "--fidelity", "hybrid",
                 "--duration", "10", "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["fidelity"] == "hybrid"
    assert document["sampled_latency"]["count"] > 0
    assert document["sampled_latency"]["p95"] > 0
