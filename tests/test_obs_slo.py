"""SLO engine: rules, burn-rate math, alert state machine, the join."""

from __future__ import annotations

import json

import pytest

from repro.obs import (Alert, AlertLog, Observability, SloEngine, SloRule,
                       TimeSeriesStore, default_latency_slo,
                       join_alerts_decisions)


def make_engine(*rules) -> SloEngine:
    store = TimeSeriesStore()
    return SloEngine(rules, store, AlertLog())


# ----------------------------------------------------------------- rules

def test_rule_validation():
    with pytest.raises(ValueError):
        SloRule("x", kind="throughput", threshold=1.0)
    with pytest.raises(ValueError):
        SloRule("x", kind="latency", threshold=0.0)
    with pytest.raises(ValueError):
        SloRule("x", kind="latency", threshold=0.1, budget=1.5)
    with pytest.raises(ValueError):
        SloRule("x", kind="latency", threshold=0.1,
                fast_window=30.0, slow_window=10.0)
    with pytest.raises(ValueError):
        SloRule("x", kind="latency", threshold=0.1, fast_burn=0.0)


def test_default_latency_slo_named_from_threshold():
    rule = default_latency_slo(0.25)
    assert rule.name == "latency-250ms"
    assert rule.kind == "latency" and rule.budget == 0.01
    assert default_latency_slo(0.25, budget=0.05).budget == 0.05


def test_engine_rejects_duplicate_rule_names():
    rule = default_latency_slo(0.25)
    with pytest.raises(ValueError):
        make_engine(rule, rule)


# ------------------------------------------------------------ burn rates

def test_latency_burn_rate_counts_threshold_violations():
    rule = SloRule("lat", kind="latency", threshold=0.1, budget=0.1,
                   fast_window=5.0, slow_window=10.0)
    engine = make_engine(rule)
    # 10 requests per tick, 50% over threshold → bad fraction 0.5,
    # burn = 0.5 / 0.1 = 5
    for tick in range(1, 4):
        latencies = [0.05] * 5 + [0.2] * 5
        engine.observe(float(tick), {"default": latencies})
    assert engine.burn_rate(rule, 3.0, 5.0) == pytest.approx(5.0)
    # burn series are recorded into the store, plottable and diffable
    fast = engine.store.series("slo_burn_rate", slo="lat", window="fast")
    assert fast is not None and fast.last[1] == pytest.approx(5.0)


def test_latency_burn_rate_empty_window_is_zero():
    rule = SloRule("lat", kind="latency", threshold=0.1, budget=0.1)
    engine = make_engine(rule)
    assert engine.burn_rate(rule, 100.0, 15.0) == 0.0
    engine.observe(1.0, {})                  # reservoir runs: no samples
    assert engine.burn_rate(rule, 1.0, 15.0) == 0.0


def test_latency_rule_filters_traffic_class():
    rule = SloRule("gold", kind="latency", threshold=0.1, budget=0.1,
                   traffic_class="gold")
    engine = make_engine(rule)
    engine.observe(1.0, {"gold": [0.2, 0.2], "bronze": [0.2] * 100})
    state = engine.state("gold")
    assert state.total == 2 and state.bad == 2    # bronze never counted


def test_error_rate_burn_from_counter_series():
    rule = SloRule("errors", kind="error-rate", budget=0.1,
                   fast_window=5.0, slow_window=10.0)
    engine = make_engine(rule)
    store = engine.store
    # cumulative counters: by t=10, 90 completions and 10 failures in the
    # window → error fraction 0.1 → burn 1.0
    store.record("requests_completed_total", 0.0, 0.0,
                 traffic_class="default")
    store.record("requests_failed_total", 0.0, 0.0, traffic_class="default")
    store.record("requests_completed_total", 10.0, 90.0,
                 traffic_class="default")
    store.record("requests_failed_total", 10.0, 10.0,
                 traffic_class="default")
    assert engine.burn_rate(rule, 10.0, 10.0) == pytest.approx(1.0)


def test_egress_cost_burn_is_rate_over_ceiling():
    rule = SloRule("spend", kind="egress-cost", threshold=0.5)   # $/s cap
    engine = make_engine(rule)
    engine.store.record("wan_egress_cost_dollars_total", 0.0, 0.0)
    engine.store.record("wan_egress_cost_dollars_total", 10.0, 10.0)
    # $1/s against a $0.5/s ceiling → burn 2
    assert engine.burn_rate(rule, 10.0, 10.0) == pytest.approx(2.0)


# ---------------------------------------------------------- state machine

def test_alert_fires_only_when_both_windows_burn():
    rule = SloRule("lat", kind="latency", threshold=0.1, budget=0.1,
                   fast_window=2.0, slow_window=10.0,
                   fast_burn=4.0, slow_burn=2.0)
    engine = make_engine(rule)
    # a long healthy history, then one sharp bad tick: the fast window
    # burns hard but the slow window stays diluted below its threshold
    for tick in range(1, 10):
        engine.observe(float(tick), {"default": [0.05] * 100})
    engine.observe(10.0, {"default": [0.2] * 100})
    assert engine.burn_rate(rule, 10.0, rule.fast_window) >= rule.fast_burn
    assert engine.burn_rate(rule, 10.0, rule.slow_window) < rule.slow_burn
    assert not engine.state("lat").firing
    assert len(engine.alerts) == 0
    # sustained badness blows through both windows → fires exactly once
    engine2 = make_engine(rule)
    for tick in range(1, 8):
        engine2.observe(float(tick), {"default": [0.2] * 10})
    assert engine2.state("lat").firing
    assert len(engine2.alerts) == 1
    alert = engine2.alerts.alerts[0]
    assert alert.active and alert.fired_fast_burn >= rule.fast_burn


def test_alert_resolves_when_both_windows_recover():
    rule = SloRule("lat", kind="latency", threshold=0.1, budget=0.5,
                   fast_window=2.0, slow_window=4.0,
                   fast_burn=1.5, slow_burn=1.0)
    engine = make_engine(rule)
    for tick in range(1, 5):
        engine.observe(float(tick), {"default": [0.2] * 10})   # 100% bad
    assert engine.state("lat").firing
    for tick in range(5, 12):
        engine.observe(float(tick), {"default": [0.01] * 50})  # recovery
    state = engine.state("lat")
    assert not state.firing
    alert = state.alert
    assert alert.resolved_at is not None
    assert alert.duration > 0
    assert alert.peak_burn >= rule.fast_burn
    assert alert.evaluations > 1


def test_alert_overlap_and_log_queries():
    log = AlertLog()
    alert = log.fire("lat", "latency", 10.0, 5.0, 2.0)
    assert alert.overlaps(10.0) and alert.overlaps(50.0)   # open interval
    assert not alert.overlaps(9.9)
    alert.resolved_at = 20.0
    assert alert.overlaps(20.0) and not alert.overlaps(20.1)
    assert log.active() == [] and log.resolved() == [alert]
    assert log.for_rule("lat") == [alert] and log.for_rule("other") == []
    assert log.firing_at(15.0) == [alert]
    line = json.loads(log.to_jsonl_lines()[0])
    assert line["rule"] == "lat" and line["resolved_at"] == 20.0
    assert "lat" in log.render()


def test_join_alerts_decisions_counts_replans():
    class FakeDecision:
        def __init__(self, sim_time, outcome):
            self.sim_time = sim_time
            self.outcome = outcome

    log = AlertLog()
    alert = log.fire("lat", "latency", 10.0, 5.0, 2.0)
    alert.resolved_at = 30.0
    decisions = [FakeDecision(5.0, "solved"), FakeDecision(15.0, "solved"),
                 FakeDecision(25.0, "replayed"), FakeDecision(35.0, "solved")]
    joined = join_alerts_decisions(log, decisions)
    assert len(joined) == 1
    assert [d.sim_time for d in joined[0]["decisions"]] == [15.0, 25.0]
    assert joined[0]["replans"] == 1


# --------------------------------------------- the acceptance-bar scenario

@pytest.fixture(scope="module")
def burnrate_run():
    from repro.experiments.harness import run_policy
    from repro.experiments.scenarios import slo_burnrate_setup
    setup = slo_burnrate_setup(duration=130.0)
    obs = Observability(setup.observability())
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    return setup, obs


def test_surge_produces_fired_and_resolved_alert(burnrate_run):
    """ISSUE acceptance: the diurnal/surge SLO scenario must produce at
    least one firing→resolved burn-rate alert."""
    setup, obs = burnrate_run
    resolved = obs.alerts.resolved()
    assert len(resolved) >= 1
    alert = resolved[0]
    # fired only after the surge began, resolved after the controller acted
    assert alert.fired_at >= 40.0
    assert alert.resolved_at > alert.fired_at


def test_alert_interval_overlaps_a_replan(burnrate_run):
    """ISSUE acceptance: the firing interval overlaps a Global Controller
    re-plan (a fresh ``solved`` decision) in the decision log."""
    setup, obs = burnrate_run
    joined = join_alerts_decisions(obs.alerts, obs.decisions)
    assert any(row["replans"] >= 1 for row in joined)


def test_burn_rate_series_recorded_for_the_rule(burnrate_run):
    setup, obs = burnrate_run
    rule = setup.slo_rules[0]
    fast = obs.timeseries.series("slo_burn_rate", slo=rule.name,
                                 window="fast")
    slow = obs.timeseries.series("slo_burn_rate", slo=rule.name,
                                 window="slow")
    assert fast is not None and slow is not None
    # the surge pushed the fast window far past its firing threshold
    assert max(fast.values()) >= rule.fast_burn


def test_alert_and_alert_repr_fields(burnrate_run):
    _, obs = burnrate_run
    alert = obs.alerts.alerts[0]
    assert isinstance(alert, Alert)
    payload = alert.as_dict()
    assert payload["kind"] == "latency"
    assert payload["peak_burn"] >= payload["fired_fast_burn"] > 0
