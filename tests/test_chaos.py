"""repro.chaos: fault plans, injection, degraded control plane, scoring.

Covers the §5 failure modes end to end: plan validation and compilation,
WAN/replica inject-recover symmetry, telemetry gating, the control-plane
outage with the stale-rule guard + fallback (the headline demonstration),
resilience scoring, and the determinism contract (empty plan == no chaos;
same seed + same plan == byte-identical run).
"""

import pytest

from repro.chaos import (ChaosRuntime, ControlPlaneOutage, FaultPlan,
                         ReplicaFault, TelemetryFault, WanFault,
                         compute_resilience, run_chaos)
from repro.chaos.inject import FaultRecord
from repro.core.controller.cluster_controller import ClusterController
from repro.core.controller.global_controller import GlobalControllerConfig
from repro.core.controller.policy import SlatePolicy
from repro.experiments.harness import Scenario, run_policy
from repro.experiments.scenarios import chaos_outage_setup
from repro.obs import join_alerts_decisions
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation


def make_world(replicas=5):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    return app, deployment


def make_sim(seed=7, **kwargs):
    app, deployment = make_world(**kwargs)
    return MeshSimulation(app, deployment, seed=seed)


# ------------------------------------------------------------- plan values


def test_plan_sorts_by_start_stably():
    late = WanFault(start=5.0, duration=1.0, src="a", dst="b",
                    multiplier=2.0)
    early_one = ControlPlaneOutage(start=1.0, duration=2.0)
    early_two = TelemetryFault(start=1.0, duration=2.0, cluster="a")
    plan = FaultPlan((late, early_one, early_two))
    # sorted by start; declaration order kept among ties
    assert plan.faults == (early_one, early_two, late)
    assert len(plan) == 3
    assert plan.end == 6.0
    assert [f.label for f in plan] == ["controller-outage",
                                      "telemetry-drop:a", "wan:a<->b"]


def test_empty_plan():
    plan = FaultPlan.empty()
    assert plan.is_empty
    assert plan.end == 0.0
    assert plan.describe() == []


def test_fault_window_validation():
    with pytest.raises(ValueError):
        ControlPlaneOutage(start=-1.0, duration=5.0)
    with pytest.raises(ValueError):
        ControlPlaneOutage(start=0.0, duration=0.0)


def test_wan_fault_validation():
    with pytest.raises(ValueError):
        WanFault(start=0.0, duration=1.0, src="a", dst="a")
    with pytest.raises(ValueError):
        WanFault(start=0.0, duration=1.0, src="a", dst="b",
                 extra_delay=-0.1)
    with pytest.raises(ValueError):
        WanFault(start=0.0, duration=1.0, src="a", dst="b", jitter=-0.1)
    assert WanFault(start=0.0, duration=1.0, src="b", dst="a",
                    partition=True).label == "partition:a<->b"


def test_replica_fault_validation():
    with pytest.raises(ValueError, match="crash replicas and/or slow"):
        ReplicaFault(start=0.0, duration=1.0, cluster="a", service="S1")
    with pytest.raises(ValueError):
        ReplicaFault(start=0.0, duration=1.0, cluster="a", service="S1",
                     crash=-1)
    with pytest.raises(ValueError):
        ReplicaFault(start=0.0, duration=1.0, cluster="a", service="S1",
                     slowdown=0.0)


def test_telemetry_fault_validation():
    with pytest.raises(ValueError):
        TelemetryFault(start=0.0, duration=1.0, cluster="a", mode="mangle")
    with pytest.raises(ValueError):
        TelemetryFault(start=0.0, duration=1.0, cluster="a", mode="delay")
    with pytest.raises(ValueError):
        TelemetryFault(start=0.0, duration=1.0, cluster="a", mode="drop",
                       delay=1.0)


def test_plan_rejects_non_fault_entries():
    with pytest.raises(TypeError):
        FaultPlan(("not a fault",))


# --------------------------------------------------------------- compiling


def test_runtime_rejects_unknown_cluster_and_service():
    sim = make_sim()
    with pytest.raises(ValueError, match="unknown cluster"):
        ChaosRuntime(sim, FaultPlan((WanFault(
            start=1.0, duration=1.0, src="west", dst="mars",
            multiplier=2.0),)))
    with pytest.raises(ValueError, match="unknown service"):
        ChaosRuntime(make_sim(), FaultPlan((ReplicaFault(
            start=1.0, duration=1.0, cluster="west", service="S9",
            crash=1),)))


def test_wan_fault_applies_and_restores_latency():
    sim = make_sim()
    latency = sim.network.latency
    base = latency.one_way("west", "east")
    ChaosRuntime(sim, FaultPlan((WanFault(
        start=1.0, duration=2.0, src="west", dst="east",
        multiplier=10.0, extra_delay=0.005),)))
    sim.sim.run(until=1.5)
    assert latency.one_way("west", "east") == pytest.approx(
        base * 10.0 + 0.005)
    sim.sim.run(until=3.5)
    assert latency.one_way("west", "east") == pytest.approx(base)


def test_replica_fault_crashes_and_recovers():
    sim = make_sim()
    pool = sim.clusters["west"].pool("S1")
    spec = sim.deployment.cluster("west")
    ChaosRuntime(sim, FaultPlan((ReplicaFault(
        start=1.0, duration=2.0, cluster="west", service="S1",
        crash=2, slowdown=3.0),)))
    sim.sim.run(until=1.5)
    assert pool.replicas == 3
    assert pool.slowdown == pytest.approx(3.0)
    assert spec.replicas["S1"] == 3        # deployment view stays honest
    sim.sim.run(until=3.5)
    assert pool.replicas == 5
    assert pool.slowdown == pytest.approx(1.0)
    assert spec.replicas["S1"] == 5


def test_crash_never_removes_last_replica():
    sim = make_sim(replicas=3)
    runtime = ChaosRuntime(sim, FaultPlan((ReplicaFault(
        start=1.0, duration=2.0, cluster="west", service="S1",
        crash=99),)))
    sim.sim.run(until=1.5)
    assert sim.clusters["west"].pool("S1").replicas == 1
    assert runtime.timeline[0].crashed == 2
    sim.sim.run(until=3.5)
    assert sim.clusters["west"].pool("S1").replicas == 3


# ------------------------------------------------------- control-plane gates


def test_controller_available_window_is_half_open():
    runtime = ChaosRuntime(make_sim(), FaultPlan((
        ControlPlaneOutage(start=10.0, duration=5.0),)))
    assert runtime.controller_available(9.9)
    assert not runtime.controller_available(10.0)
    assert not runtime.controller_available(14.9)
    assert runtime.controller_available(15.0)


class _Report:
    def __init__(self, cluster):
        self.cluster = cluster


def test_gate_reports_drop_mode():
    runtime = ChaosRuntime(make_sim(), FaultPlan((TelemetryFault(
        start=2.0, duration=4.0, cluster="west"),)))
    west, east = _Report("west"), _Report("east")
    assert runtime.gate_reports(1.0, [west, east]) == [west, east]
    assert runtime.gate_reports(3.0, [west, east]) == [east]
    assert runtime.reports_dropped == 1
    assert runtime.gate_reports(6.0, [west, east]) == [west, east]


def test_gate_reports_delay_mode_releases_in_order():
    runtime = ChaosRuntime(make_sim(), FaultPlan((TelemetryFault(
        start=0.0, duration=4.0, cluster="west", mode="delay",
        delay=3.0),)))
    first, second, east = _Report("west"), _Report("west"), _Report("east")
    assert runtime.gate_reports(1.0, [first, east]) == [east]
    assert runtime.gate_reports(2.0, [second]) == []
    assert runtime.reports_delayed == 2
    # released oldest-first once their release time has passed
    assert runtime.gate_reports(4.0, []) == [first]
    assert runtime.gate_reports(5.0, []) == [second]
    assert runtime.counters()["pending_delayed"] == 0


# ------------------------------------------------------- stale-rule guard


def test_guard_requires_arming():
    controller = ClusterController("west")
    assert not controller.check_staleness(99.0, None, None)


def test_guard_validates_max_rule_age():
    with pytest.raises(ValueError):
        ClusterController("west", max_rule_age=0.0)


def test_touch_is_monotonic():
    controller = ClusterController("west")
    controller.touch(5.0)
    controller.touch(3.0)
    assert controller.last_contact == 5.0
    assert controller.rule_age(9.0) == pytest.approx(4.0)


# ------------------------------------------------ outage demonstration (§5)


@pytest.fixture(scope="module")
def outage_runs():
    """Frozen vs guarded vs unfaulted runs of the chaos-outage scenario."""
    setup = chaos_outage_setup()
    frozen = run_chaos(setup.scenario, setup.policy, setup.plan,
                       observability=setup.observability())
    setup_b = chaos_outage_setup()
    guarded = run_chaos(setup_b.scenario, setup_b.policy, setup_b.plan,
                        fallback=setup_b.fallback,
                        max_rule_age=setup_b.max_rule_age,
                        observability=setup_b.observability())
    setup_c = chaos_outage_setup()
    baseline = run_chaos(setup_c.scenario, setup_c.policy, FaultPlan.empty())
    return setup, frozen, guarded, baseline


def _window_p95(result, lo, hi):
    window = sorted(lat for t, lat in result.samples
                    if lat is not None and lo <= t < hi)
    assert len(window) >= 20
    return window[min(len(window) - 1, int(0.95 * len(window)))]


def test_guard_trips_once_per_cluster_and_reconciles(outage_runs):
    setup, frozen, guarded, _ = outage_runs
    assert frozen.fallback_trips == []
    trips = guarded.fallback_trips
    assert len(trips) == len(setup.scenario.deployment.cluster_names)
    outage = setup.plan.faults[0]
    # first epoch whose rule age exceeds max_rule_age, inside the outage
    assert all(outage.start < t < outage.start + outage.duration
               for t in trips)
    assert all(c.fallback_activations == 1
               for c in guarded.controllers.values())
    # GC return reconciles every cluster
    assert all(c.reconciliations >= 1
               for c in guarded.controllers.values())
    assert not any(c.fallback_active for c in guarded.controllers.values())


def test_fallback_beats_frozen_stale_rules(outage_runs):
    setup, frozen, guarded, _ = outage_runs
    outage = setup.plan.faults[0]
    trip = guarded.fallback_trips[0]
    end = outage.start + outage.duration
    frozen_p95 = _window_p95(frozen, trip, end)
    guarded_p95 = _window_p95(guarded, trip, end)
    # locality fallback avoids the degraded WAN; frozen rules keep paying it
    assert guarded_p95 < 0.6 * frozen_p95


def test_resilience_report_scores_the_outage(outage_runs):
    setup, _, guarded, baseline = outage_runs
    report = guarded.resilience(baseline)
    assert len(report.episodes) == len(setup.plan)
    outage = next(e for e in report.episodes
                  if e.kind == "ControlPlaneOutage")
    assert outage.detection_seconds is not None
    trip = guarded.fallback_trips[0]
    assert outage.detection_seconds == pytest.approx(trip - outage.injected_at)
    assert outage.recovery_seconds is not None
    assert outage.recovery_seconds >= outage.recovered_at - outage.injected_at
    assert outage.requests_degraded > 0
    assert outage.requests_total > outage.requests_degraded
    rendered = report.render()
    assert "controller-outage" in rendered
    assert "egress cost" in rendered


def test_fault_timeline_joins_decision_log(outage_runs):
    setup, _, guarded, _ = outage_runs
    rows = join_alerts_decisions(guarded.chaos.timeline, guarded.decisions)
    assert len(rows) == len(setup.plan)
    outage_row = next(r for r in rows
                      if r["alert"].kind == "ControlPlaneOutage")
    # the re-plan when the GC returns lands inside the fault window,
    # attributing the recovery decision to the fault
    assert outage_row["replans"] >= 1
    assert all(isinstance(r["alert"], FaultRecord) for r in rows)


# ------------------------------------------------------------- determinism


def _quick_scenario(seed=42):
    app, deployment = make_world()
    return Scenario(
        name="chaos-determinism", app=app, deployment=deployment,
        demand=DemandMatrix({("default", "west"): 200.0,
                             ("default", "east"): 80.0}),
        duration=8.0, warmup=1.0, seed=seed, epoch=2.0)


def _quick_policy():
    return SlatePolicy(GlobalControllerConfig(rho_max=0.95,
                                              learn_profiles=False),
                       adaptive=True)


def _quick_plan():
    return FaultPlan((
        WanFault(start=2.0, duration=3.0, src="west", dst="east",
                 multiplier=4.0, jitter=0.002),
        ReplicaFault(start=3.0, duration=2.0, cluster="west", service="S2",
                     crash=1, slowdown=2.0),
        ControlPlaneOutage(start=4.0, duration=2.0),
    ))


def test_same_seed_same_plan_is_byte_identical():
    first = run_chaos(_quick_scenario(), _quick_policy(), _quick_plan(),
                      fallback="locality", max_rule_age=1.5)
    second = run_chaos(_quick_scenario(), _quick_policy(), _quick_plan(),
                       fallback="locality", max_rule_age=1.5)
    assert repr(first.samples).encode() == repr(second.samples).encode()
    assert first.egress_cost == second.egress_cost
    assert first.fallback_trips == second.fallback_trips
    assert ([r.as_dict() for r in first.chaos.timeline]
            == [r.as_dict() for r in second.chaos.timeline])


def test_different_seed_differs():
    first = run_chaos(_quick_scenario(), _quick_policy(), _quick_plan())
    other = run_chaos(_quick_scenario(seed=11), _quick_policy(),
                      _quick_plan())
    assert first.samples != other.samples


def test_empty_plan_matches_chaos_free_run():
    """A chaos-armed run with no faults is the plain run_policy run."""
    chaotic = run_chaos(_quick_scenario(), _quick_policy(),
                        FaultPlan.empty())
    plain = run_policy(_quick_scenario(), _quick_policy())
    assert chaotic.outcome.latencies == plain.latencies
    assert chaotic.outcome.egress_bytes == plain.egress_bytes
    assert chaotic.outcome.egress_cost == plain.egress_cost
    assert chaotic.chaos.counters()["faults"] == 0
    assert chaotic.hung_requests == 0


def test_plan_none_equals_empty_plan():
    with_none = run_chaos(_quick_scenario(), _quick_policy())
    with_empty = run_chaos(_quick_scenario(), _quick_policy(),
                           FaultPlan.empty())
    assert with_none.samples == with_empty.samples


# --------------------------------------------------- telemetry-age (decisions)


def test_decision_log_records_telemetry_age_under_drop():
    from repro.obs import ObservabilityConfig
    scenario = _quick_scenario()
    # [3, 7) starves epochs t=4 and t=6; the t=2 epoch feeds the
    # controller first so its view has something to age from
    plan = FaultPlan((
        TelemetryFault(start=3.0, duration=4.0, cluster="west"),
        TelemetryFault(start=3.0, duration=4.0, cluster="east"),
    ))
    result = run_chaos(scenario, _quick_policy(), plan,
                       observability=ObservabilityConfig(decisions=True))
    decisions = list(result.decisions)
    assert decisions, "decision log is empty"
    ages = {d.sim_time: d.telemetry_age for d in decisions}
    # while both clusters' reports are dropped the controller's view ages
    starved = [age for t, age in ages.items()
               if 3.0 < t < 7.0 and age is not None]
    assert starved and max(starved) > scenario.epoch
    # once telemetry flows again the age snaps back to ~0
    healthy = [age for t, age in ages.items() if t >= 7.0]
    assert healthy and min(healthy) == pytest.approx(0.0)
    assert result.chaos.reports_dropped > 0


# --------------------------------------------------------- scoring units


def _record(label="wan:a<->b", kind="WanFault", start=10.0, end=20.0):
    return FaultRecord(index=0, kind=kind, label=label, fired_at=start,
                       resolved_at=end)


def _flat_samples(rate_hz=10, until=40.0, lat=0.1):
    return [(i / rate_hz, lat) for i in range(int(until * rate_hz))]


def test_resilience_detection_is_first_signal_after_injection():
    report = compute_resilience(
        [_record()], _flat_samples(), _flat_samples(),
        detection_signals=[5.0, 12.0, 15.0],
        faulted_egress_cost=2.0, baseline_egress_cost=1.0)
    episode = report.episodes[0]
    assert episode.detection_seconds == pytest.approx(2.0)   # 12.0 - 10.0
    assert report.egress_overhead_cost == pytest.approx(1.0)
    assert report.egress_overhead_ratio == pytest.approx(2.0)


def test_resilience_recovery_waits_for_latency_band():
    # latency 10x during [10, 25) even though the fault "ends" at 20
    samples = [(t, 1.0 if 10.0 <= t < 25.0 else 0.1)
               for t, _ in _flat_samples()]
    report = compute_resilience(
        [_record()], samples, _flat_samples(), detection_signals=[],
        faulted_egress_cost=0.0, baseline_egress_cost=0.0, window=2.0)
    episode = report.episodes[0]
    assert episode.detection_seconds is None
    assert episode.baseline_p95 == pytest.approx(0.1)
    # first clean window starts at 26 (the [24,26) window straddles the
    # tail of the degradation): recovery = 26 + 2 - 10
    assert episode.recovery_seconds == pytest.approx(18.0)
    assert episode.requests_degraded > 0


def test_resilience_counts_failed_requests():
    samples = _flat_samples()
    samples[120] = (12.0, None)
    samples[130] = (13.0, None)
    report = compute_resilience(
        [_record()], samples, _flat_samples(), detection_signals=[10.0],
        faulted_egress_cost=0.0, baseline_egress_cost=0.0)
    assert report.episodes[0].requests_failed == 2


def test_resilience_validates_band_and_window():
    with pytest.raises(ValueError):
        compute_resilience([], [], [], [], 0.0, 0.0, band=0.5)
    with pytest.raises(ValueError):
        compute_resilience([], [], [], [], 0.0, 0.0, window=0.0)


def test_fault_record_overlap_matches_alert_semantics():
    record = _record(start=10.0, end=20.0)
    assert record.overlaps(10.0) and record.overlaps(20.0)
    assert not record.overlaps(9.99) and not record.overlaps(20.01)
