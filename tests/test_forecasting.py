"""Tests for the shared online forecasting library (repro.forecasting)."""

import math

import pytest

from repro.forecasting import (BacktestTracker, EwmaForecaster,
                               HoltForecaster, HoltWintersForecaster)


class TestEwmaForecaster:
    def test_first_observation_is_the_forecast(self):
        model = EwmaForecaster()
        model.observe("k", 42.0)
        assert model.forecast("k") == pytest.approx(42.0)
        assert model.known("k") and not model.known("other")

    def test_flat_at_every_horizon(self):
        model = EwmaForecaster(alpha=0.5)
        for value in (10.0, 20.0, 30.0):
            model.observe("k", value)
        assert model.forecast("k", 1) == model.forecast("k", 50)

    def test_alpha_one_tracks_exactly(self):
        model = EwmaForecaster(alpha=1.0)
        for value in (5.0, 7.0, 11.0):
            model.observe("k", value)
        assert model.forecast("k") == pytest.approx(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaForecaster().forecast("k", steps_ahead=-1)


class _ReferenceHolt:
    """The controller's pre-refactor Holt implementation, inlined verbatim
    so the shared model can be proven bit-identical to it."""

    def __init__(self, alpha=0.6, beta=0.3):
        self.alpha = alpha
        self.beta = beta
        self.state = None   # (level, trend)

    def observe(self, value):
        if self.state is None:
            self.state = (value, 0.0)
            return
        level, trend = self.state
        new_level = self.alpha * value + (1 - self.alpha) * (level + trend)
        new_trend = (self.beta * (new_level - level)
                     + (1 - self.beta) * trend)
        self.state = (new_level, new_trend)

    def forecast(self, steps_ahead=1):
        level, trend = self.state
        return max(0.0, level + steps_ahead * trend)


class TestHoltDampingAndEquivalence:
    def test_controller_module_reexports_shared_class(self):
        from repro.core.controller.forecast import HoltForecaster as Exported
        assert Exported is HoltForecaster

    def test_default_phi_bit_identical_to_reference(self):
        """phi=1 must run the exact historical arithmetic, not merely an
        approximation of it — forecast_demand runs stay byte-identical."""
        shared = HoltForecaster(alpha=0.6, beta=0.3)
        reference = _ReferenceHolt(alpha=0.6, beta=0.3)
        # an irregular but deterministic sequence
        values = [abs(math.sin(i * 0.7)) * 400 + i * 3.1 for i in range(50)]
        for value in values:
            shared.observe("k", value)
            reference.observe(value)
            for steps in (1, 2, 5, 12):
                assert shared.forecast("k", steps) \
                    == reference.forecast(steps)

    def test_damped_flattens_long_horizons(self):
        undamped = HoltForecaster(alpha=0.8, beta=0.5)
        damped = HoltForecaster(alpha=0.8, beta=0.5, phi=0.8)
        for value in range(100, 200, 10):
            undamped.observe("k", float(value))
            damped.observe("k", float(value))
        assert damped.forecast("k", 20) < undamped.forecast("k", 20)

    def test_damped_forecast_approaches_asymptote(self):
        phi = 0.7
        model = HoltForecaster(alpha=0.8, beta=0.5, phi=phi)
        for value in range(100, 200, 10):
            model.observe("k", float(value))
        state = model._series["k"]
        asymptote = state.level + phi / (1 - phi) * state.trend
        assert model.forecast("k", 500) == pytest.approx(asymptote)
        assert model.forecast("k", 500) == pytest.approx(
            model.forecast("k", 1000))

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            HoltForecaster(phi=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(phi=1.1)


class TestHoltWinters:
    def test_warmup_forecast_is_running_mean(self):
        model = HoltWintersForecaster(season_length=4)
        model.observe("k", 10.0)
        model.observe("k", 20.0)
        assert model.forecast("k", 3) == pytest.approx(15.0)

    def test_learns_a_pure_seasonal_pattern(self):
        pattern = [10.0, 50.0, 90.0, 50.0]
        model = HoltWintersForecaster(alpha=0.3, beta=0.0, gamma=0.5,
                                      season_length=4)
        for cycle in range(6):
            for value in pattern:
                model.observe("k", value)
        # next observation would be pattern[0]; four ahead wraps to it too
        assert model.forecast("k", 1) == pytest.approx(10.0, abs=3.0)
        assert model.forecast("k", 2) == pytest.approx(50.0, abs=3.0)
        assert model.forecast("k", 3) == pytest.approx(90.0, abs=3.0)

    def test_beats_holt_on_seasonal_data(self):
        values = [100 + 80 * math.sin(2 * math.pi * i / 12)
                  for i in range(96)]
        seasonal = BacktestTracker(HoltWintersForecaster(season_length=12))
        trend_only = BacktestTracker(HoltForecaster())
        for value in values:
            seasonal.observe("k", value)
            trend_only.observe("k", value)
        assert seasonal.score("k").mase < 1.0        # beats naive
        assert seasonal.score("k").mae < trend_only.score("k").mae

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_length=1)
        with pytest.raises(ValueError):
            HoltWintersForecaster(gamma=1.5)
        assert HoltWintersForecaster().forecast("unseen") == 0.0


class TestBacktestTracker:
    def test_no_score_before_second_observation(self):
        tracker = BacktestTracker(HoltForecaster())
        assert tracker.score("k") is None
        tracker.observe("k", 10.0)
        assert tracker.score("k") is None
        tracker.observe("k", 12.0)
        score = tracker.score("k")
        assert score is not None and score.evaluations == 1

    def test_model_equal_to_naive_scores_mase_one(self):
        # alpha=1 EWMA *is* the naive last-value forecast
        tracker = BacktestTracker(EwmaForecaster(alpha=1.0))
        for value in (10.0, 14.0, 9.0, 20.0):
            tracker.observe("k", value)
        assert tracker.score("k").mase == pytest.approx(1.0)

    def test_hand_computed_errors(self):
        tracker = BacktestTracker(EwmaForecaster(alpha=1.0))
        tracker.observe("k", 10.0)
        predicted = tracker.observe("k", 16.0)   # standing forecast was 10
        assert predicted == pytest.approx(10.0)
        score = tracker.score("k")
        assert score.mae == pytest.approx(6.0)
        assert score.smape == pytest.approx(2 * 6.0 / 26.0)

    def test_zero_denominator_smape_guard(self):
        tracker = BacktestTracker(EwmaForecaster())
        tracker.observe("k", 0.0)
        tracker.observe("k", 0.0)
        assert tracker.score("k").smape == 0.0

    def test_perfect_model_mase_zero(self):
        tracker = BacktestTracker(EwmaForecaster(alpha=1.0))
        for value in (5.0, 5.0, 5.0):
            tracker.observe("k", value)
        score = tracker.score("k")
        assert score.mae == 0.0 and score.mase == 0.0

    def test_scores_covers_every_evaluated_key(self):
        tracker = BacktestTracker(HoltForecaster())
        for key in ("b", "a"):
            tracker.observe(key, 1.0)
            tracker.observe(key, 2.0)
        scores = tracker.scores()
        assert list(scores) == ["a", "b"]
        assert all(s.evaluations == 1 for s in scores.values())

    def test_as_dict_round_trip(self):
        tracker = BacktestTracker(HoltForecaster())
        tracker.observe("k", 1.0)
        tracker.observe("k", 2.0)
        payload = tracker.score("k").as_dict()
        assert set(payload) == {"evaluations", "mase", "smape", "mae"}
