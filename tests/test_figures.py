"""Integration tests: every paper figure's qualitative result holds.

Shortened versions of the benchmark scenarios (smaller durations) asserting
the *shape* each figure demonstrates: who wins and the mechanism behind it.
The full-length runs live in benchmarks/.
"""

import pytest

from repro.analysis.fluid import evaluate_rules
from repro.core.controller.global_controller import GlobalController
from repro.experiments.harness import compare_policies, run_policy
from repro.experiments.scenarios import (fig3_threshold_scenario,
                                         fig4_offload_threshold_problem,
                                         fig6a_how_much,
                                         fig6b_which_cluster, fig6c_multihop,
                                         fig6d_traffic_classes,
                                         locality_failover_policy,
                                         waterfall_with_absolute_threshold)


@pytest.fixture(scope="module")
def fig6a():
    setup = fig6a_how_much(duration=20.0)
    return setup, compare_policies(setup.scenario, setup.policies)


@pytest.fixture(scope="module")
def fig6c():
    setup = fig6c_multihop(duration=20.0)
    comparison = compare_policies(
        setup.scenario, setup.policies + [locality_failover_policy()])
    return setup, comparison


class TestFig6a:
    def test_slate_beats_waterfall_on_mean(self, fig6a):
        _, comparison = fig6a
        assert comparison.latency_ratio("waterfall", "slate") > 1.5

    def test_slate_beats_waterfall_on_tail(self, fig6a):
        _, comparison = fig6a
        assert comparison.latency_ratio("waterfall", "slate",
                                        stat="p99") > 1.5

    def test_slate_offloads_waterfall_stays_local(self, fig6a):
        _, comparison = fig6a
        # the mechanism: SLATE pays more egress to win latency here
        assert (comparison.outcome("slate").egress_bytes
                > comparison.outcome("waterfall").egress_bytes)


class TestFig6b:
    def test_slate_beats_greedy_on_gcp_topology(self):
        setup = fig6b_which_cluster(duration=20.0)
        comparison = compare_policies(setup.scenario, setup.policies)
        assert comparison.latency_ratio("waterfall", "slate") > 1.15

    def test_waterfall_ignores_sc_slate_uses_it(self):
        setup = fig6b_which_cluster()
        ctx = setup.scenario.context()
        wf_rules = setup.waterfall.compute_rules(ctx)
        slate_rules = setup.slate.compute_rules(ctx)

        def sc_inflow(rules):
            total = 0.0
            for rule in rules:
                if rule.src_cluster in ("OR", "IOW"):
                    total += rule.weight_map().get("SC", 0.0)
            return total

        assert sc_inflow(wf_rules) == 0.0
        assert sc_inflow(slate_rules) > 0.0


class TestFig6c:
    def test_slate_cuts_early_for_10x_egress_saving(self, fig6c):
        _, comparison = fig6c
        # paper: 11.6x; the size ratio here gives ~9x
        assert comparison.egress_cost_ratio("waterfall", "slate") > 5.0
        assert comparison.egress_cost_ratio("locality-failover",
                                            "slate") > 5.0

    def test_slate_latency_no_worse(self, fig6c):
        _, comparison = fig6c
        assert comparison.latency_ratio("waterfall", "slate") > 0.95

    def test_mechanism_cut_placement(self, fig6c):
        setup, _ = fig6c
        scenario = setup.scenario
        rules = setup.slate.compute_rules(scenario.context())
        prediction = evaluate_rules(scenario.app, scenario.deployment,
                                    scenario.demand, rules)
        # SLATE moves the cut to FR->MP: no MP executions left in west
        assert prediction.pool_work.get(("MP", "west"), 0.0) < 0.2


class TestFig6d:
    def test_slate_beats_class_blind_waterfall(self):
        setup = fig6d_traffic_classes(duration=20.0)
        comparison = compare_policies(setup.scenario, setup.policies)
        assert comparison.latency_ratio("waterfall", "slate") > 1.05
        # mechanism: SLATE crosses fewer requests (moves mostly H)
        assert (comparison.outcome("slate").egress_bytes
                < comparison.outcome("waterfall").egress_bytes)

    def test_slate_offloads_heavy_not_light(self):
        setup = fig6d_traffic_classes()
        scenario = setup.scenario
        result = GlobalController.oracle(
            scenario.app, scenario.deployment, scenario.demand)
        assert result.ingress_local_fraction("L", "west") > 0.95
        assert result.ingress_local_fraction("H", "west") < 0.8


class TestFig4:
    def test_offload_point_moves_with_network_latency(self):
        """Lower WAN latency => offloading starts at lower load."""
        def first_offload_load(one_way_ms):
            for west_rps in range(200, 1001, 100):
                scenario = fig4_offload_threshold_problem(
                    one_way_ms, float(west_rps))
                result = GlobalController.oracle(
                    scenario.app, scenario.deployment, scenario.demand)
                if result.ingress_local_fraction("default", "west") < 0.999:
                    return west_rps
            return 1001

        cheap_wan = first_offload_load(5.0)
        pricey_wan = first_offload_load(50.0)
        assert cheap_wan <= pricey_wan

    def test_local_rate_capped_by_capacity(self):
        scenario = fig4_offload_threshold_problem(25.0, 1000.0)
        result = GlobalController.oracle(
            scenario.app, scenario.deployment, scenario.demand)
        local_rps = (result.ingress_local_fraction("default", "west")
                     * 1000.0)
        # 6 replicas x 100 rps x 0.95 cap = 570
        assert local_rps <= 570.0 + 1.0


class TestFig3:
    def test_no_static_threshold_matches_slate_everywhere(self):
        """Conservative loses at high load kept remote; aggressive queues."""
        from repro.core.controller.policy import SlatePolicy
        loads = [200.0, 350.0, 470.0]
        conservative, aggressive, slate = [], [], []
        for west in loads:
            scenario = fig3_threshold_scenario(west)
            ctx = scenario.context()
            for policy, sink in (
                    (waterfall_with_absolute_threshold(
                        scenario.app, scenario.deployment, 250.0),
                     conservative),
                    (waterfall_with_absolute_threshold(
                        scenario.app, scenario.deployment, 480.0),
                     aggressive),
                    (SlatePolicy(), slate)):
                rules = policy.compute_rules(ctx)
                prediction = evaluate_rules(scenario.app,
                                            scenario.deployment,
                                            scenario.demand, rules)
                sink.append(prediction.mean_latency)
        # SLATE within epsilon of best everywhere
        for i in range(len(loads)):
            assert slate[i] <= min(conservative[i], aggressive[i]) + 1e-4
        # conservative wastes RTT at moderate load (it offloads at 250 RPS
        # when the local cluster could absorb 350), aggressive queues at
        # high load
        assert conservative[1] > slate[1] * 1.1
        assert aggressive[-1] > slate[-1] * 1.5
