"""Time-series pipeline: ring buffers, scrape loop, engine scheduling."""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much
from repro.obs import (Observability, ObservabilityConfig, TimeSeries,
                       TimeSeriesStore, percentile)
from repro.sim.engine import SimulationError, Simulator


# ----------------------------------------------------------- percentile

def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 4.0
    assert percentile(values, 0.5) == pytest.approx(2.5)
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


# ----------------------------------------------------------- TimeSeries

def test_series_appends_and_windows():
    series = TimeSeries("x", capacity=10)
    for t in range(5):
        series.append(float(t), t * 10.0)
    assert len(series) == 5
    assert series.last == (4.0, 40.0)
    assert series.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
    assert series.value_at(2.5) == 20.0
    assert series.value_at(-1.0) == 0.0          # before first sample
    assert series.value_at(-1.0, default=9.0) == 9.0


def test_series_rejects_time_travel():
    series = TimeSeries("x")
    series.append(2.0, 1.0)
    with pytest.raises(ValueError):
        series.append(1.0, 2.0)
    series.append(2.0, 3.0)   # ties are fine (same-tick overwrite pattern)


def test_series_ring_buffer_evicts_oldest():
    series = TimeSeries("x", capacity=3)
    for t in range(5):
        series.append(float(t), float(t))
    assert len(series) == 3
    assert series.items() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
    assert series.dropped_points == 2            # truncation is never silent
    with pytest.raises(ValueError):
        TimeSeries("x", capacity=1)


# ------------------------------------------------------ TimeSeriesStore

def test_store_records_labeled_series():
    store = TimeSeriesStore()
    store.record("depth", 1.0, 3, cluster="west")
    store.record("depth", 1.0, 5, cluster="east")
    store.record("depth", 2.0, 4, cluster="west")
    assert store.names() == ["depth"]
    assert store.series("depth", cluster="west").last == (2.0, 4.0)
    assert store.series("depth", cluster="south") is None
    assert len(store.all_series("depth")) == 2
    assert store.series_count() == 2


def test_store_rate_is_counter_delta_over_window():
    store = TimeSeriesStore()
    for t, value in [(0.0, 0.0), (1.0, 10.0), (2.0, 30.0), (3.0, 30.0)]:
        store.record("total", t, value)
    assert store.rate("total", 0.0, 2.0) == pytest.approx(15.0)
    assert store.rate("total", 2.0, 3.0) == 0.0
    assert store.rate("total", 3.0, 3.0) == 0.0   # empty window
    assert store.rate("missing", 0.0, 1.0) == 0.0


def test_store_window_percentile():
    store = TimeSeriesStore()
    for t in range(10):
        store.record("lat", float(t), float(t))
    assert store.window_percentile("lat", 0.0, 9.0, 0.5) == pytest.approx(4.5)
    assert store.window_percentile("lat", 5.0, 9.0, 1.0) == 9.0


def test_store_snapshot_round_trips():
    store = TimeSeriesStore(max_points=32)
    store.record("a", 1.0, 2.0, cluster="west")
    store.record("a", 2.0, 3.0, cluster="west")
    store.record("b", 1.5, 7.0)
    store.scrape_count = 2
    rebuilt = TimeSeriesStore.from_snapshot(store.snapshot())
    assert rebuilt.snapshot() == store.snapshot()
    assert rebuilt.series("a", cluster="west").items() == [(1.0, 2.0),
                                                           (2.0, 3.0)]


# ------------------------------------------------------ engine scheduling

def test_schedule_periodic_ticks_strictly_inside():
    sim = Simulator()
    seen = []
    count = sim.schedule_periodic(1.0, lambda: seen.append(sim.now), 5.0)
    assert count == 4                       # 1, 2, 3, 4 — not 5 (strict)
    sim.run(until=5.0)
    sim.run_until_idle()                    # pre-scheduled ticks drain fine
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_schedule_periodic_validates():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None, 5.0)
    sim.run(until=2.0)
    with pytest.raises(SimulationError):
        sim.schedule_periodic(1.0, lambda: None, 1.0)   # until < now
    assert sim.schedule_periodic(3.0, lambda: None, 4.0) == 0


def test_schedule_periodic_is_relative_to_now():
    sim = Simulator()
    sim.run(until=10.0)
    seen = []
    assert sim.schedule_periodic(2.0, lambda: seen.append(sim.now),
                                 15.0) == 2
    sim.run_until_idle()
    assert seen == [12.0, 14.0]


# ----------------------------------------------------------- scrape loop

@pytest.fixture(scope="module")
def scraped():
    setup = fig6a_how_much(duration=8.0)
    obs = Observability(ObservabilityConfig(timeseries=True,
                                            scrape_interval=1.0))
    outcome = run_policy(setup.scenario, setup.slate, observability=obs)
    return obs, outcome


def test_scrape_loop_samples_every_interval(scraped):
    obs, _ = scraped
    store = obs.timeseries
    # 7 in-run ticks (1..7, strictly inside 8.0) + the post-drain finalize
    assert store.scrape_count == 8
    events = store.series("engine_events_total")
    assert [t for t, _ in events.items()][:7] == [float(t)
                                                 for t in range(1, 8)]
    assert events.items()[-1][0] >= 8.0          # terminal sample post-drain


def test_scrape_counters_are_monotone(scraped):
    obs, _ = scraped
    store = obs.timeseries
    for name in ("engine_events_total", "gateway_admitted_total",
                 "requests_completed_total", "wan_egress_cost_dollars_total"):
        for series in store.all_series(name):
            values = series.values()
            assert values == sorted(values), f"{series!r} not monotone"


def test_scrape_covers_every_signal_family(scraped):
    obs, _ = scraped
    names = set(obs.timeseries.names())
    assert {"engine_events_total", "pool_queue_depth", "pool_utilization",
            "gateway_admitted_total", "requests_completed_total",
            "request_rate_rps", "request_latency_p50", "request_latency_p99",
            "wan_egress_bytes_total", "routing_rules",
            "routing_weight_churn"} <= names


def test_scrape_latency_percentiles_ordered(scraped):
    obs, _ = scraped
    store = obs.timeseries
    p50 = store.series("request_latency_p50", traffic_class="default")
    p95 = store.series("request_latency_p95", traffic_class="default")
    p99 = store.series("request_latency_p99", traffic_class="default")
    assert p50 is not None and len(p50) > 0
    for (t, v50), (_, v95), (_, v99) in zip(p50.items(), p95.items(),
                                            p99.items()):
        assert v50 <= v95 <= v99, f"percentiles inverted at t={t}"


def test_scrape_request_totals_match_telemetry(scraped):
    obs, outcome = scraped
    store = obs.timeseries
    completed = store.series("requests_completed_total",
                             traffic_class="default")
    # the terminal sample equals the run's exact lifetime counter, and the
    # warm-up-cut outcome can only be smaller
    assert completed.last[1] >= len(outcome.latencies)


def test_enabled_scraping_does_not_perturb_outcomes():
    """Scrapes are read-only: enabling them must not change results."""
    baseline_setup = fig6a_how_much(duration=5.0)
    baseline = run_policy(baseline_setup.scenario, baseline_setup.slate)
    scraped_setup = fig6a_how_much(duration=5.0)   # fresh policy state
    observed = run_policy(
        scraped_setup.scenario, scraped_setup.slate,
        observability=ObservabilityConfig(timeseries=True,
                                          scrape_interval=0.25))
    assert observed.latencies == baseline.latencies
    assert observed.egress_bytes == baseline.egress_bytes
    assert observed.egress_cost == baseline.egress_cost


def test_disabled_timeseries_builds_nothing():
    obs = Observability.coerce(ObservabilityConfig(tracing=True))
    assert obs.timeseries is None and obs.scrape is None
    assert obs.slo is None and obs.alerts is None


def test_reservoir_mode_keeps_counters_drops_percentiles():
    from repro.sim.runner import MeshSimulation
    setup = fig6a_how_much(duration=4.0)
    scenario = setup.scenario
    obs = Observability(ObservabilityConfig(timeseries=True))
    simulation = MeshSimulation(scenario.app, scenario.deployment,
                                seed=scenario.seed, observability=obs,
                                latency_reservoir=32)
    setup.slate.compute_rules(scenario.context()).apply(simulation.table)
    simulation.run(scenario.demand, scenario.duration)
    store = obs.timeseries
    assert store.series("requests_completed_total",
                        traffic_class="default").last[1] > 0
    # no per-request retention → no sliding window percentiles
    assert store.series("request_latency_p99",
                        traffic_class="default") is None
