"""Shared fixtures: small apps and deployments used across the suite."""

from __future__ import annotations

import pytest

from repro.sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                       linear_chain_app, two_class_app, two_region_latency)


@pytest.fixture
def chain_app():
    """3-service linear chain, 10 ms exec per service."""
    return linear_chain_app(n_services=3, exec_time=0.010)


@pytest.fixture
def two_cluster_deployment(chain_app):
    """west/east, 5 replicas of every chain service, 25 ms one-way."""
    return DeploymentSpec.uniform(
        chain_app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))


@pytest.fixture
def light_demand():
    """Comfortably under capacity on both clusters."""
    return DemandMatrix({("default", "west"): 200.0,
                         ("default", "east"): 100.0})


@pytest.fixture
def overload_west_demand():
    """West beyond its 500 RPS single-cluster capacity."""
    return DemandMatrix({("default", "west"): 700.0,
                         ("default", "east"): 100.0})


@pytest.fixture
def anomaly_app():
    return anomaly_detection_app()


@pytest.fixture
def lh_app():
    return two_class_app(light_exec=0.003, heavy_exec=0.045, n_services=2)
