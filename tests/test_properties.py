"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCDF
from repro.baselines.waterfall import waterfall_split
from repro.core.latency.mm1 import PoolDelayModel, erlang_c, mmc_backlog
from repro.core.optimizer.piecewise import evaluate, linearize_convex
from repro.core.rules import RoutingRule
from repro.mesh.routing_table import RouteKey, RoutingTable
from repro.sim.workload import DemandMatrix

finite_weights = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d"]),
    values=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=4,
).filter(lambda w: sum(w.values()) > 1e-9)


@given(finite_weights)
def test_routing_table_weights_normalised(weights):
    table = RoutingTable()
    table.set_weights(RouteKey("S", "c", "a"), weights)
    normalised = table.weights_for("S", "c", "a")
    assert sum(normalised.values()) == pytest.approx(1.0)
    assert all(v > 0 for v in normalised.values())
    assert set(normalised) <= set(weights)


@given(finite_weights)
def test_routing_rule_preserves_proportions(weights):
    rule = RoutingRule.make("S", "c", "a", weights)
    normalised = rule.weight_map()
    total = sum(weights.values())
    for name, value in weights.items():
        share = value / total
        if share > 0:
            assert normalised[name] == pytest.approx(share)
        else:
            # zero or subnormal-underflow shares are dropped entirely
            assert name not in normalised
    assert sum(normalised.values()) == pytest.approx(1.0)


@given(st.integers(min_value=1, max_value=64),
       st.floats(min_value=0.0, max_value=0.999))
def test_erlang_c_is_probability(servers, rho):
    value = erlang_c(servers, rho * servers)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=1, max_value=32),
       st.floats(min_value=0.0, max_value=0.99))
def test_mmc_backlog_at_least_offered_load(servers, rho):
    offered = rho * servers
    backlog = mmc_backlog(offered, servers)
    # in-system count includes those in service: N >= a always
    assert backlog >= offered - 1e-9


@given(st.integers(min_value=1, max_value=16),
       st.lists(st.floats(min_value=0.01, max_value=0.97), min_size=2,
                max_size=6))
def test_pool_backlog_monotone_in_load(servers, rhos):
    model = PoolDelayModel(servers)
    ordered = sorted(rhos)
    values = [model.backlog(r * servers) for r in ordered]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


@given(st.integers(min_value=2, max_value=20),
       st.floats(min_value=0.5, max_value=0.98))
def test_linearization_upper_bounds_function(servers, rho_max):
    model = PoolDelayModel(servers)
    x_max = rho_max * servers
    segments = linearize_convex(model.backlog, x_max)
    for fraction in (0.1, 0.33, 0.61, 0.87, 0.99):
        x = fraction * x_max
        assert evaluate(segments, x) >= model.backlog(x) - 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False), min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_cdf_quantile_monotone(values, q1, q2):
    cdf = EmpiricalCDF(values)
    lo, hi = min(q1, q2), max(q1, q2)
    assert cdf.quantile(lo) <= cdf.quantile(hi) + 1e-12
    assert cdf.min <= cdf.quantile(lo)
    assert cdf.quantile(hi) <= cdf.max


loads_st = st.dictionaries(
    keys=st.sampled_from(["w", "x", "y", "z"]),
    values=st.floats(min_value=0.0, max_value=1e4),
    min_size=1, max_size=4)
caps_st = st.dictionaries(
    keys=st.sampled_from(["w", "x", "y", "z"]),
    values=st.floats(min_value=0.0, max_value=1e4),
    min_size=4, max_size=4)


@settings(max_examples=200)
@given(loads_st, caps_st, st.booleans())
def test_waterfall_split_is_a_distribution(loads, capacities, coordinated):
    deployed = ["w", "x", "y", "z"]
    proximity = {src: [c for c in deployed if c != src]
                 for c in deployed for src in deployed}
    split = waterfall_split(loads, capacities, deployed, proximity,
                            coordinated=coordinated)
    for src, load in loads.items():
        if load > 0:
            fractions = split[src]
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert all(f >= 0 for f in fractions.values())
            assert set(fractions) <= set(deployed)
        else:
            assert src not in split or split.get(src) is not None


@settings(max_examples=200)
@given(loads_st, caps_st)
def test_waterfall_conserves_load(loads, capacities):
    deployed = ["w", "x", "y", "z"]
    proximity = {src: [c for c in deployed if c != src] for src in deployed}
    split = waterfall_split(loads, capacities, deployed, proximity)
    total_in = sum(load for load in loads.values() if load > 0)
    total_out = sum(loads[src] * fraction
                    for src, fractions in split.items()
                    for fraction in fractions.values())
    assert total_out == pytest.approx(total_in)


@given(st.dictionaries(
    keys=st.tuples(st.sampled_from(["a", "b"]),
                   st.sampled_from(["w", "e"])),
    values=st.floats(min_value=0.001, max_value=1e5),
    min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=10.0))
def test_demand_matrix_scaling(entries, factor):
    demand = DemandMatrix(entries)
    scaled = demand.scaled(factor)
    assert scaled.total_rps() == pytest.approx(demand.total_rps() * factor)


@given(st.lists(st.tuples(st.sampled_from(["GET", "POST"]),
                          st.sampled_from([f"/p{i}" for i in range(10)])),
                max_size=300),
       st.integers(min_value=1, max_value=8))
def test_derivation_conserves_observations(pairs, max_classes):
    from repro.core.classes.derivation import derive_classes
    from repro.sim.request import RequestAttributes
    observations = [RequestAttributes.make("S", m, p) for m, p in pairs]
    derived = derive_classes(observations, max_classes=max_classes,
                             min_share=0.05, min_samples=5)
    assert sum(derived.support.values()) == len(observations)
    assert len(derived.class_names) <= max_classes
    # every observed signature has an assignment
    for attrs in observations:
        from repro.core.classes.classifier import canonical_class_name
        sig = canonical_class_name("S", attrs.method, attrs.path)
        assert sig in derived.assignment


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.floats(min_value=0.01, max_value=100.0)),
                min_size=1, max_size=60),
       st.integers(min_value=1, max_value=8),
       st.floats(min_value=0.1, max_value=50.0))
def test_cache_respects_capacity_and_ttl(operations, capacity, ttl):
    from repro.sim.cache import CacheSpec, EdgeCache
    cache = EdgeCache(CacheSpec("a", "b", ttl=ttl, capacity=capacity))
    now = 0.0
    for key, gap in operations:
        now += gap
        cache.insert(key, now)
        assert len(cache) <= capacity
        # an entry inserted just now must be visible within its TTL
        assert cache.lookup(key, now + ttl * 0.5)
    # nothing survives past its TTL
    assert not any(cache.lookup(key, now + ttl + 1.0)
                   for key, _ in operations)


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=2**31))
def test_cluster_grouping_is_a_partition(n_clusters, n_groups, seed):
    from repro.core.optimizer.contraction import group_clusters
    from repro.sim.network import LatencyMatrix
    import numpy as np
    if n_groups > n_clusters:
        n_groups = n_clusters
    rng = np.random.default_rng(seed)
    names = [f"c{i}" for i in range(n_clusters)]
    delays = {(a, b): float(rng.uniform(0.001, 0.1))
              for i, a in enumerate(names) for b in names[i + 1:]}
    latency = LatencyMatrix(names, delays)
    groups = group_clusters(latency, names, n_groups)
    assert len(groups) == n_groups
    flattened = sorted(c for group in groups for c in group)
    assert flattened == sorted(names)   # exact partition


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1000.0),
                          st.floats(min_value=0.1, max_value=100.0)),
                min_size=1, max_size=10))
def test_timeline_profiles_cover_all_keyframes(rates_and_gaps):
    from repro.sim.traces import DemandTimeline
    from repro.sim.workload import DemandMatrix
    keyframes = []
    time = 0.0
    for rps, gap in rates_and_gaps:
        keyframes.append((time, DemandMatrix(
            {("c", "west"): rps} if rps > 0 else {})))
        time += gap
    timeline = DemandTimeline(keyframes=keyframes, end=time + 1.0)
    profile = timeline.profile_for("c", "west")
    for (start, demand) in keyframes:
        segment = profile.segment_at(start)
        expected = demand.rps("c", "west")
        actual = segment.rps if segment is not None else 0.0
        assert actual == pytest.approx(expected)


@given(st.dictionaries(st.sampled_from(["a", "b", "c", "d", "e"]),
                       st.floats(min_value=1e-6, max_value=1e3),
                       min_size=1, max_size=5))
def test_render_integer_percents_sum_to_100(weights):
    from repro.mesh.render import _integer_percents
    total = sum(weights.values())
    normalised = {k: v / total for k, v in weights.items()}
    percents = _integer_percents(normalised)
    assert sum(p for _, p in percents) == 100
    assert all(p > 0 for _, p in percents)
    assert set(name for name, _ in percents) <= set(weights)


@settings(max_examples=50)
@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.floats(min_value=0.05, max_value=1.0),
                       min_size=1, max_size=3),
       st.integers(min_value=0, max_value=2**31))
def test_rendezvous_total_function(weights, key):
    from repro.mesh.affinity import weighted_rendezvous
    winner = weighted_rendezvous(key, weights)
    assert winner in weights
    # stability: same inputs, same winner
    assert weighted_rendezvous(key, weights) == winner


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=50.0, max_value=900.0),
       st.floats(min_value=0.0, max_value=900.0),
       st.sampled_from([5.0, 25.0, 50.0]))
def test_optimizer_flows_conserve_demand(west_rps, east_rps, one_way_ms):
    from repro.core.optimizer import INGRESS_EDGE, SolverError, TEProblem, solve
    from repro.sim import (DeploymentSpec, linear_chain_app,
                           two_region_latency)
    app = linear_chain_app(n_services=2, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(one_way_ms))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    problem = TEProblem.from_specs(app, deployment, demand)
    total_capacity = 2 * 5 / 0.010 * problem.rho_max
    try:
        result = solve(problem)
    except SolverError:
        # only legitimate when the instance genuinely exceeds capacity
        assert west_rps + east_rps > total_capacity * 0.99
        return
    ingress = sum(rate for (cls, e, *_), rate in result.flows.items()
                  if e == INGRESS_EDGE)
    child = sum(rate for (cls, e, *_), rate in result.flows.items()
                if e == 0)
    total = west_rps + east_rps
    assert ingress == pytest.approx(total, rel=1e-5)
    assert child == pytest.approx(total, rel=1e-5)
    for rho in result.pool_utilization.values():
        assert rho <= problem.rho_max + 1e-6
