"""Tests for resilient incremental rollout (§5 resilience)."""

import pytest

from repro.core.controller.rollout import IncrementalRollout, RolloutConfig
from repro.core.rules import RoutingRule, RuleSet


def target(weights):
    return RuleSet([RoutingRule.make("S", "c", "west", weights)])


def weights_of(rule_set):
    return rule_set.rule_for("S", "c", "west").weight_map()


def test_first_step_moves_partially_from_local():
    rollout = IncrementalRollout(RolloutConfig(step=0.25))
    applied = rollout.advance(target({"east": 1.0}))
    w = weights_of(applied)
    # started at 100% local; moved 25% of the way to 100% east
    assert w["east"] == pytest.approx(0.25)
    assert w["west"] == pytest.approx(0.75)


def test_converges_to_target():
    rollout = IncrementalRollout(RolloutConfig(step=0.5))
    applied = None
    for _ in range(20):
        applied = rollout.advance(target({"east": 1.0}),
                                  observed_objective=1.0)
    assert weights_of(applied)["east"] == pytest.approx(1.0, abs=1e-4)


def test_regression_triggers_rollback():
    rollout = IncrementalRollout(RolloutConfig(step=0.5,
                                               regression_tolerance=1.1))
    first = rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    # second epoch: objective much worse -> revert to `first` weights
    second = rollout.advance(target({"east": 1.0}), observed_objective=5.0)
    assert rollout.rollbacks == 1
    # rollback restores the pre-advance state: fully local again
    assert weights_of(second).get("east", 0.0) == pytest.approx(0.0)
    assert weights_of(second)["west"] == pytest.approx(1.0)
    assert weights_of(first)["east"] == pytest.approx(0.5)


def test_rollback_backs_off_step():
    config = RolloutConfig(step=0.4, backoff=0.5)
    rollout = IncrementalRollout(config)
    rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    rollout.advance(target({"east": 1.0}), observed_objective=10.0)
    assert rollout.current_step == pytest.approx(0.2)


def test_step_recovers_after_clean_epochs():
    config = RolloutConfig(step=0.4, backoff=0.5, recovery=2.0)
    rollout = IncrementalRollout(config)
    rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    rollout.advance(target({"east": 1.0}), observed_objective=10.0)   # back off
    assert rollout.current_step == pytest.approx(0.2)
    rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    assert rollout.current_step == pytest.approx(0.4)   # capped at config.step


def test_noise_within_tolerance_not_a_regression():
    rollout = IncrementalRollout(RolloutConfig(step=0.5,
                                               regression_tolerance=1.2))
    rollout.advance(target({"east": 1.0}), observed_objective=1.0)
    rollout.advance(target({"east": 1.0}), observed_objective=1.1)
    assert rollout.rollbacks == 0


def test_dropped_target_keys_decay_to_local():
    rollout = IncrementalRollout(RolloutConfig(step=0.5))
    rollout.advance(target({"east": 1.0}))
    # new target has no rule for S: existing rule decays back toward local
    applied = rollout.advance(RuleSet(), observed_objective=1.0)
    w = weights_of(applied)
    assert w["west"] > 0.7


def test_config_validation():
    with pytest.raises(ValueError):
        RolloutConfig(step=0.0)
    with pytest.raises(ValueError):
        RolloutConfig(regression_tolerance=0.9)
    with pytest.raises(ValueError):
        RolloutConfig(backoff=1.0)
    with pytest.raises(ValueError):
        RolloutConfig(recovery=1.0)
