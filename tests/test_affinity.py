"""Tests for weighted rendezvous affinity routing."""

import dataclasses
from collections import Counter

import pytest

from repro.mesh.affinity import weighted_rendezvous
from repro.mesh.routing_table import RouteKey
from repro.sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                       two_region_latency)
from repro.sim.apps import AppSpec
from repro.sim.cache import CacheSpec
from repro.sim.runner import MeshSimulation


class TestWeightedRendezvous:
    def test_deterministic(self):
        weights = {"a": 0.5, "b": 0.5}
        for key in range(50):
            assert (weighted_rendezvous(key, weights)
                    == weighted_rendezvous(key, weights))

    def test_split_matches_weights(self):
        weights = {"a": 0.7, "b": 0.3}
        counts = Counter(weighted_rendezvous(key, weights)
                         for key in range(20000))
        assert counts["a"] / 20000 == pytest.approx(0.7, abs=0.02)

    def test_zero_weight_cluster_never_wins(self):
        weights = {"a": 1.0, "b": 0.0}
        assert all(weighted_rendezvous(key, weights) == "a"
                   for key in range(200))

    def test_minimal_disruption_on_weight_change(self):
        """Growing one cluster's weight only moves keys *to* it."""
        before = {key: weighted_rendezvous(key, {"a": 0.5, "b": 0.5})
                  for key in range(5000)}
        after = {key: weighted_rendezvous(key, {"a": 0.7, "b": 0.5})
                 for key in range(5000)}
        for key in range(5000):
            if before[key] != after[key]:
                assert after[key] == "a"   # only migrations toward "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_rendezvous(1, {})
        with pytest.raises(ValueError):
            weighted_rendezvous(1, {"a": -1.0})
        with pytest.raises(ValueError):
            weighted_rendezvous(1, {"a": 0.0})


def sticky_cached_app(sticky=True):
    base = anomaly_detection_app()
    spec = dataclasses.replace(base.classes["default"], key_space=400,
                               sticky_affinity=sticky)
    return AppSpec(name=base.name, classes={"default": spec},
                   caches={("MP", "DB"): CacheSpec("MP", "DB", ttl=8.0)})


def run_split(sticky, seed=19):
    app = sticky_cached_app(sticky=sticky)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=8,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=seed, keep_spans=True)
    sim.table.set_weights(RouteKey("MP", "default", "west"),
                          {"west": 0.5, "east": 0.5})
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=20.0)
    return sim


class TestStickyRouting:
    def test_affinity_pins_keys_to_clusters(self):
        sim = run_split(sticky=True)
        key_clusters: dict[int, set] = {}
        requests = {r.request_id: r for r in sim.telemetry.requests}
        for span in sim.telemetry.spans:
            if span.service != "MP" or span.request_id not in requests:
                continue
            key = requests[span.request_id].data_key
            key_clusters.setdefault(key, set()).add(span.cluster)
        multi = [k for k, clusters in key_clusters.items()
                 if len(clusters) > 1]
        assert multi == []   # every key served by exactly one cluster

    def test_random_split_scatters_keys(self):
        sim = run_split(sticky=False)
        key_clusters: dict[int, set] = {}
        requests = {r.request_id: r for r in sim.telemetry.requests}
        for span in sim.telemetry.spans:
            if span.service != "MP" or span.request_id not in requests:
                continue
            key = requests[span.request_id].data_key
            key_clusters.setdefault(key, set()).add(span.cluster)
        multi = [k for k, clusters in key_clusters.items()
                 if len(clusters) > 1]
        assert len(multi) > len(key_clusters) / 2

    def test_affinity_preserves_cache_hit_rate_under_split(self):
        def aggregate_hit_rate(sim):
            hits = misses = 0
            for cluster in ("west", "east"):
                stats = sim.edge_cache("MP", "DB", cluster).stats
                hits += stats.hits
                misses += stats.misses
            return hits / (hits + misses)

        sticky_rate = aggregate_hit_rate(run_split(sticky=True))
        random_rate = aggregate_hit_rate(run_split(sticky=False))
        # same 50/50 split, same load: affinity keeps each key's working
        # set warm in exactly one cluster
        assert sticky_rate > random_rate + 0.05

    def test_affinity_split_still_balances_load(self):
        sim = run_split(sticky=True)
        reports = {r.cluster: r for r in sim.harvest_reports()}
        west = reports["west"].service_rps("MP", "default")
        east = reports["east"].service_rps("MP", "default")
        assert west / (west + east) == pytest.approx(0.5, abs=0.06)
