"""Tests for CDFs, summaries, comparisons, and report rendering."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.compare import Comparison, PolicyOutcome
from repro.analysis.report import (format_cdf_series, format_comparison,
                                   format_table)
from repro.analysis.stats import (mean_confidence_interval,
                                  slo_attainment, summarize)


class TestCDF:
    def test_basic_stats(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.n == 4
        assert cdf.mean == pytest.approx(2.5)
        assert cdf.min == 1.0
        assert cdf.max == 4.0

    def test_quantiles(self):
        cdf = EmpiricalCDF(range(1, 101))
        assert cdf.quantile(0.5) == pytest.approx(50.5)
        assert cdf.percentile(99) == pytest.approx(99.01)

    def test_probability_below(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_below(2.5) == 0.5
        assert cdf.probability_below(0.0) == 0.0
        assert cdf.probability_below(10.0) == 1.0

    def test_series_monotone(self):
        cdf = EmpiricalCDF(np.random.default_rng(0).exponential(1.0, 500))
        series = cdf.series(points=20)
        values = [v for v, _ in series]
        probs = [p for _, p in series]
        assert values == sorted(values)
        assert probs[0] == 0.0 and probs[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, float("inf")])

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).quantile(1.5)


class TestSummary:
    def test_summarize(self):
        summary = summarize([0.010] * 99 + [0.100])
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.010)
        assert summary.max == pytest.approx(0.100)
        assert summary.mean == pytest.approx(0.0109)

    def test_as_ms(self):
        summary = summarize([0.010, 0.020])
        assert summary.as_ms()["mean"] == pytest.approx(15.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(1)
        mean, low, high = mean_confidence_interval(rng.normal(10, 2, 200))
        assert low < mean < high
        assert low == pytest.approx(10, abs=0.5)

    def test_confidence_interval_degenerate(self):
        mean, low, high = mean_confidence_interval([5.0, 5.0, 5.0])
        assert (mean, low, high) == (5.0, 5.0, 5.0)

    def test_slo_attainment(self):
        values = [0.01, 0.02, 0.05, 0.20]
        assert slo_attainment(values, 0.05) == pytest.approx(0.75)
        assert slo_attainment(values, 1.0) == 1.0
        with pytest.raises(ValueError):
            slo_attainment(values, 0.0)
        with pytest.raises(ValueError):
            slo_attainment([], 0.1)


class TestComparison:
    def make(self):
        comparison = Comparison("scenario-x")
        comparison.add(PolicyOutcome("slate", [0.010] * 100,
                                     egress_cost=1.0))
        comparison.add(PolicyOutcome("waterfall", [0.035] * 100,
                                     egress_cost=11.6))
        return comparison

    def test_latency_ratio(self):
        assert self.make().latency_ratio("waterfall", "slate") == pytest.approx(3.5)

    def test_latency_ratio_other_stat(self):
        assert self.make().latency_ratio("waterfall", "slate",
                                         stat="p99") == pytest.approx(3.5)

    def test_egress_ratio(self):
        assert self.make().egress_cost_ratio(
            "waterfall", "slate") == pytest.approx(11.6)

    def test_duplicate_policy_rejected(self):
        comparison = self.make()
        with pytest.raises(ValueError):
            comparison.add(PolicyOutcome("slate", [1.0]))

    def test_missing_policy_keyerror(self):
        with pytest.raises(KeyError, match="no outcome"):
            self.make().outcome("nope")

    def test_zero_egress_target_rejected(self):
        comparison = Comparison("x")
        comparison.add(PolicyOutcome("a", [1.0], egress_cost=0.0))
        comparison.add(PolicyOutcome("b", [1.0], egress_cost=1.0))
        with pytest.raises(ValueError):
            comparison.egress_cost_ratio("b", "a")


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_format_cdf_series_includes_policies(self):
        cdfs = {"slate": EmpiricalCDF([0.01, 0.02]),
                "waterfall": EmpiricalCDF([0.03, 0.06])}
        text = format_cdf_series(cdfs, title="fig")
        assert "slate" in text and "waterfall" in text
        assert "p50" in text and "mean" in text

    def test_format_comparison_includes_ratios(self):
        comparison = Comparison("s")
        comparison.add(PolicyOutcome("slate", [0.010] * 10, egress_cost=1.0))
        comparison.add(PolicyOutcome("waterfall", [0.030] * 10,
                                     egress_cost=5.0))
        text = format_comparison(comparison, "waterfall", "slate")
        assert "3.00x" in text
        assert "5.00x" in text
