"""Smoke-run every example script end to end at a compressed time scale.

Each ``examples/*.py`` reads ``REPRO_EXAMPLE_TIME_SCALE`` and multiplies
its simulated durations by it, so the whole gallery runs in seconds here
while exercising the same code paths users see. A failing import, a
renamed API, or an example that crashes on its own output formatting all
surface as a test failure instead of a broken README walkthrough.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

#: examples that simulate long horizons even scaled down
_SLOW_OK_SECONDS = 180

#: compressed sim-time factor; cost_budget.py has no sim clock and
#: ignores it
_SCALE = "0.2"


@pytest.mark.parametrize("example", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(example: Path, tmp_path: Path) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_EXAMPLE_TIME_SCALE"] = _SCALE
    # cwd=tmp_path: examples that write artifacts (observe_headline's
    # Chrome trace) must not litter the repo
    proc = subprocess.run(
        [sys.executable, str(example)],
        cwd=tmp_path, env=env, capture_output=True, text=True,
        timeout=_SLOW_OK_SECONDS)
    assert proc.returncode == 0, (
        f"{example.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}")
    assert proc.stdout.strip(), f"{example.name} printed nothing"


def test_every_sim_example_has_the_scale_knob() -> None:
    """New examples must honor the smoke knob (or be sim-clock free)."""
    exempt = {"cost_budget.py"}  # fluid-model only, no sim clock
    for example in EXAMPLES:
        if example.name in exempt:
            continue
        source = example.read_text()
        assert "REPRO_EXAMPLE_TIME_SCALE" in source, (
            f"{example.name} does not read REPRO_EXAMPLE_TIME_SCALE; "
            "scale its durations or exempt it here")
