"""Tests for Istio manifest rendering of routing rules."""

import re

import pytest

from repro.core.controller.global_controller import GlobalController
from repro.core.rules import RoutingRule, RuleSet
from repro.mesh.render import (CLUSTER_LABEL, destination_rules,
                               rules_to_virtualservices)
from repro.sim import (DemandMatrix, DeploymentSpec, two_class_app,
                       two_region_latency)


@pytest.fixture
def app():
    return two_class_app()


def sample_rules():
    return RuleSet([
        RoutingRule.make("S1", "H", "west", {"west": 0.6, "east": 0.4}),
        RoutingRule.make("S1", "*", "west", {"west": 1.0}),
        RoutingRule.make("S2", "L", "east", {"east": 1.0}),
    ])


def test_one_virtualservice_per_service(app):
    yaml_text = rules_to_virtualservices(sample_rules(), app)
    assert yaml_text.count("kind: VirtualService") == 2
    assert "name: slate-s1" in yaml_text
    assert "name: slate-s2" in yaml_text


def test_weights_are_integer_percents_summing_to_100(app):
    yaml_text = rules_to_virtualservices(sample_rules(), app)
    weights = [int(w) for w in re.findall(r"weight: (\d+)", yaml_text)]
    assert 60 in weights and 40 in weights
    # the two single-destination routes render as 100
    assert weights.count(100) == 2


def test_rounding_drift_absorbed_by_largest(app):
    rules = RuleSet([RoutingRule.make("S1", "H", "west",
                                      {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3})])
    yaml_text = rules_to_virtualservices(rules, app)
    weights = [int(w) for w in re.findall(r"weight: (\d+)", yaml_text)]
    assert sum(weights) == 100
    assert sorted(weights) == [33, 33, 34]


def test_class_matches_carry_method_and_path(app):
    yaml_text = rules_to_virtualservices(sample_rules(), app)
    # class H matches POST /heavy (two_class_app's attributes)
    assert "exact: POST" in yaml_text
    assert "exact: /heavy" in yaml_text


def test_wildcard_rule_has_no_method_match_and_comes_last(app):
    yaml_text = rules_to_virtualservices(sample_rules(), app)
    s1_doc = [d for d in yaml_text.split("---") if "slate-s1" in d][0]
    class_pos = s1_doc.find("exact: POST")
    # the wildcard route's source-only match appears after the class route
    wildcard_pos = s1_doc.rfind(f"{CLUSTER_LABEL}: west")
    assert 0 < class_pos < wildcard_pos


def test_source_cluster_labels_present(app):
    yaml_text = rules_to_virtualservices(sample_rules(), app)
    assert f"{CLUSTER_LABEL}: west" in yaml_text
    assert f"{CLUSTER_LABEL}: east" in yaml_text


def test_destination_rules_declare_subsets(app):
    yaml_text = destination_rules(sample_rules())
    assert yaml_text.count("kind: DestinationRule") == 2
    s1_doc = [d for d in yaml_text.split("---") if "slate-s1" in d][0]
    assert "- name: east" in s1_doc and "- name: west" in s1_doc


def test_round_trip_from_optimizer(app):
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=8,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("L", "west"): 450.0, ("H", "west"): 130.0,
                           ("L", "east"): 100.0, ("H", "east"): 30.0})
    result = GlobalController.oracle(app, deployment, demand)
    yaml_text = rules_to_virtualservices(result.rules(), app)
    assert "VirtualService" in yaml_text
    # every routed service appears
    for rule in result.rules():
        assert f"slate-{rule.service.lower()}" in yaml_text
