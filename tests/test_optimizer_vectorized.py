"""Property tests: vectorized model builds match the loop reference.

PR 7's vectorized assembly claims byte-identical models — same canonical
fingerprint, same solver input, same extracted results — on every
instance. These tests pin that down on the seed scenarios (the paper
figures' problems) and on randomized synthetic topologies.
"""

import numpy as np
import pytest

from repro.core.optimizer import (StructureCache, TEProblem, build_model,
                                  solve)
from repro.core.optimizer.cache import model_fingerprint
from repro.experiments.scenarios import (fig6a_how_much, fig6b_which_cluster,
                                         fig6c_multihop,
                                         fig6d_traffic_classes,
                                         synthetic_te_problem)


def _figure_problem(setup):
    scenario = setup.scenario
    return TEProblem.from_specs(scenario.app, scenario.deployment,
                                scenario.demand)


def seed_problems():
    """The paper-figure instances plus randomized synthetic ones."""
    cases = [
        ("fig6a", _figure_problem(fig6a_how_much())),
        ("fig6b", _figure_problem(fig6b_which_cluster())),
        ("fig6c", _figure_problem(fig6c_multihop())),
        ("fig6d", _figure_problem(fig6d_traffic_classes())),
    ]
    for seed in (1, 2, 3):
        cases.append((f"synthetic-s{seed}",
                      synthetic_te_problem(6, 4, 3, seed=seed)))
    cases.append(("synthetic-sparse",
                  synthetic_te_problem(8, 3, 5, seed=4, replication=0.5,
                                       ingresses_per_class=2)))
    return cases


@pytest.mark.parametrize("name,problem", seed_problems(),
                         ids=[name for name, _ in seed_problems()])
class TestVectorizedMatchesLoop:
    def test_same_fingerprint(self, name, problem):
        fast = build_model(problem, backend="vectorized")
        slow = build_model(problem, backend="loop")
        assert model_fingerprint(fast) == model_fingerprint(slow)

    def test_same_result(self, name, problem):
        fast = solve(problem, backend="vectorized")
        slow = solve(problem, backend="loop")
        assert fast.ok and slow.ok
        assert abs(fast.objective - slow.objective) <= 1e-9
        assert fast.rules().rules == slow.rules().rules


def test_milp_backends_agree():
    problem = synthetic_te_problem(4, 3, 2, seed=7)
    fast = build_model(problem, max_splits=1, backend="vectorized")
    slow = build_model(problem, max_splits=1, backend="loop")
    assert model_fingerprint(fast) == model_fingerprint(slow)


def test_structure_cache_rescatter_is_byte_identical():
    """A demand-moved rebuild through the cache == a cold build."""
    problem = synthetic_te_problem(6, 4, 3, seed=5)
    cache = StructureCache()
    build_model(problem, structure_cache=cache)
    for workload in problem.workloads.values():
        for cluster in workload.demand:
            workload.demand[cluster] *= 1.25
    warm = build_model(problem, structure_cache=cache)
    assert cache.hits == 1
    cold = build_model(problem)
    assert model_fingerprint(warm) == model_fingerprint(cold)
    assert np.array_equal(warm.b_eq, cold.b_eq)


def test_structure_cache_key_is_sparsity_aware():
    """Changing which ingresses are active must miss the cache."""
    problem = synthetic_te_problem(6, 4, 3, seed=5)
    cache = StructureCache()
    build_model(problem, structure_cache=cache)
    workload = next(iter(problem.workloads.values()))
    dropped = next(iter(workload.demand))
    workload.demand[dropped] = 0.0
    build_model(problem, structure_cache=cache)
    assert cache.misses == 2
