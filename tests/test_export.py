"""Tests for trace assembly and result export."""

import csv
import json

import pytest

from repro.analysis.compare import Comparison, PolicyOutcome
from repro.analysis.export import (write_comparison_csv, write_latencies_csv,
                                   write_spans_jsonl)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation


@pytest.fixture(scope="module")
def small_run():
    app = linear_chain_app(n_services=2, exec_time=0.005)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=12, keep_spans=True)
    sim.run(DemandMatrix({("default", "west"): 100.0}), duration=5.0)
    return sim


class TestTraces:
    def test_traces_assembled_per_request(self, small_run):
        traces = small_run.telemetry.traces()
        assert len(traces) == len(small_run.telemetry.requests)
        sample = next(iter(traces.values()))
        # 2-service chain: two spans per request
        assert len(sample.spans) == 2
        assert {s.service for s in sample.spans} == {"S1", "S2"}

    def test_trace_ids_match_requests(self, small_run):
        traces = small_run.telemetry.traces()
        request_ids = {r.request_id for r in small_run.telemetry.requests}
        assert set(traces) == request_ids


class TestLatencyCSV:
    def test_round_trip(self, small_run, tmp_path):
        path = tmp_path / "latencies.csv"
        rows = write_latencies_csv(small_run.telemetry, path)
        assert rows == len(small_run.telemetry.requests)
        with open(path) as handle:
            records = list(csv.DictReader(handle))
        assert len(records) == rows
        assert all(float(r["latency"]) > 0 for r in records)
        assert records[0]["traffic_class"] == "default"

    def test_warmup_filter(self, small_run, tmp_path):
        path = tmp_path / "filtered.csv"
        rows = write_latencies_csv(small_run.telemetry, path, after=2.5)
        assert 0 < rows < len(small_run.telemetry.requests)


class TestSpanJSONL:
    def test_one_object_per_span(self, small_run, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(small_run.telemetry.spans, path)
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(small_run.telemetry.spans)
        record = json.loads(lines[0])
        assert {"request_id", "service", "cluster", "exec_time",
                "request_bytes"} <= set(record)


class TestComparisonCSV:
    def test_rows_per_policy(self, tmp_path):
        comparison = Comparison("scenario-x")
        comparison.add(PolicyOutcome("slate", [0.01, 0.02],
                                     egress_bytes=100, egress_cost=0.5))
        comparison.add(PolicyOutcome("waterfall", [0.03, 0.06],
                                     egress_bytes=200, egress_cost=1.5))
        path = tmp_path / "comparison.csv"
        assert write_comparison_csv(comparison, path) == 2
        with open(path) as handle:
            records = list(csv.DictReader(handle))
        by_policy = {r["policy"]: r for r in records}
        assert float(by_policy["slate"]["mean"]) == pytest.approx(0.015)
        assert by_policy["waterfall"]["egress_bytes"] == "200"
