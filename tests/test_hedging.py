"""Tests for hedged requests (tail-cutting duplicates)."""

import statistics

import pytest

from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation, TimeoutPolicy
from repro.sim.topology import ClusterSpec


def test_hedge_delay_validation():
    with pytest.raises(ValueError, match="hedge_delay must be > 0"):
        TimeoutPolicy(call_timeout=1.0, hedge_delay=0.0)
    with pytest.raises(ValueError, match="precede"):
        TimeoutPolicy(call_timeout=1.0, hedge_delay=1.5)


def hot_west_sim(timeouts, seed=41):
    """West S1 pool is undersized: queueing creates a heavy tail."""
    app = linear_chain_app(n_services=1, exec_time=0.010)
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"S1": 2}),    # 200 rps capacity
                  ClusterSpec("east", {"S1": 10})],
        latency=two_region_latency(10.0))
    return MeshSimulation(app, deployment, seed=seed, timeouts=timeouts)


def run(timeouts, seed=41):
    sim = hot_west_sim(timeouts, seed=seed)
    sim.run(DemandMatrix({("default", "west"): 180.0}), duration=30.0)
    lats = sim.telemetry.latencies(after=5.0)
    return sim, lats


def test_no_hedging_below_delay():
    sim, _ = run(TimeoutPolicy(call_timeout=10.0, hedge_delay=5.0))
    # queueing at rho 0.9 on 2 replicas rarely exceeds 5 s
    assert sim.hedged_calls == 0


def test_hedging_fires_on_slow_calls():
    sim, _ = run(TimeoutPolicy(call_timeout=5.0, hedge_delay=0.08))
    assert sim.hedged_calls > 0
    assert sim.telemetry.failed_requests == []


def test_hedging_cuts_the_tail():
    def p99(lats):
        return sorted(lats)[int(0.99 * len(lats))]

    # hedge at ~p70 of the local wait distribution: stragglers get a fresh
    # start on the idle remote pool (20 ms RTT + 10 ms exec ~= 60 ms total,
    # well under the 100 ms+ local tail)
    _, plain = run(TimeoutPolicy(call_timeout=5.0))
    _, hedged = run(TimeoutPolicy(call_timeout=5.0, hedge_delay=0.03))
    assert p99(hedged) < p99(plain) * 0.85
    # mean should not get worse either (hedges only fire on stragglers)
    assert statistics.mean(hedged) <= statistics.mean(plain) * 1.05


def test_first_response_wins_exactly_once():
    sim, lats = run(TimeoutPolicy(call_timeout=5.0, hedge_delay=0.05))
    generated = sum(r.ingress_counts.get("default", 0)
                    for r in sim.harvest_reports())
    assert len(sim.telemetry.requests) == generated


def test_failed_hedge_branch_does_not_kill_primary():
    # hedge goes to east; kill east S1 so the hedge branch is dropped and
    # eventually the *primary* (west) answers
    sim = hot_west_sim(TimeoutPolicy(call_timeout=5.0, hedge_delay=0.05))
    sim.sim.schedule(3.0, sim.fail_service, "east", "S1")
    sim.run(DemandMatrix({("default", "west"): 180.0}), duration=20.0)
    # hedges to the dead cluster were dropped; primaries still completed
    assert sim.telemetry.failed_requests == []
    assert len(sim.telemetry.requests) > 3000
