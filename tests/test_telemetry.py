"""Tests for proxy/run telemetry accumulation."""

import pytest

from repro.mesh.telemetry import ProxyTelemetry, RunTelemetry
from repro.sim.request import Request, RequestAttributes, Span


def make_span(service="S1", cluster="west", cls="default",
              enqueue=0.0, start=0.1, end=0.4, exec_time=0.2,
              caller_cluster="west"):
    return Span(request_id=1, traffic_class=cls, service=service,
                cluster=cluster, caller_service=None,
                caller_cluster=caller_cluster, enqueue_time=enqueue,
                start_time=start, end_time=end, exec_time=exec_time)


def make_request(cluster="west", arrival=0.0, completion=0.5):
    request = Request(request_id=1,
                      attributes=RequestAttributes.make("S1"),
                      ingress_cluster=cluster, arrival_time=arrival,
                      traffic_class="default")
    request.completion_time = completion
    return request


def test_span_aggregation_per_service_class():
    telemetry = ProxyTelemetry("west")
    telemetry.record_span(make_span())
    telemetry.record_span(make_span(end=0.6))
    report = telemetry.harvest(10.0, pool_stats={})
    window = report.service_class[("S1", "default")]
    assert window.completions == 2
    assert window.mean_latency == pytest.approx((0.4 + 0.6) / 2)
    assert window.mean_exec == pytest.approx(0.2)
    assert window.mean_queue_wait == pytest.approx(0.1)


def test_remote_arrivals_counted():
    telemetry = ProxyTelemetry("west")
    telemetry.record_span(make_span(caller_cluster="east"))
    telemetry.record_span(make_span(caller_cluster="west"))
    report = telemetry.harvest(1.0, pool_stats={})
    assert report.service_class[("S1", "default")].remote_arrivals == 1


def test_wrong_cluster_span_rejected():
    telemetry = ProxyTelemetry("west")
    with pytest.raises(ValueError):
        telemetry.record_span(make_span(cluster="east"))


def test_ingress_counting_and_rps():
    telemetry = ProxyTelemetry("west")
    for _ in range(20):
        telemetry.record_ingress(make_request())
    report = telemetry.harvest(10.0, pool_stats={})
    assert report.ingress_counts["default"] == 20
    assert report.ingress_rps("default") == pytest.approx(2.0)
    assert report.ingress_rps("other") == 0.0


def test_harvest_resets_accumulators():
    telemetry = ProxyTelemetry("west")
    telemetry.record_span(make_span())
    telemetry.record_ingress(make_request())
    telemetry.harvest(5.0, pool_stats={})
    report = telemetry.harvest(10.0, pool_stats={})
    assert report.service_class == {}
    assert report.ingress_counts == {}
    assert report.start_time == 5.0
    assert report.duration == 5.0


def test_service_rps_from_report():
    telemetry = ProxyTelemetry("west")
    for _ in range(30):
        telemetry.record_span(make_span())
    report = telemetry.harvest(10.0, pool_stats={})
    assert report.service_rps("S1", "default") == pytest.approx(3.0)
    assert report.service_rps("S9", "default") == 0.0


def test_completion_latencies_recorded():
    telemetry = ProxyTelemetry("west")
    telemetry.record_completion(make_request(completion=0.75))
    report = telemetry.harvest(1.0, pool_stats={})
    assert report.request_latencies == [pytest.approx(0.75)]


def test_run_telemetry_warmup_filter():
    run = RunTelemetry()
    run.record_completion(make_request(arrival=1.0, completion=1.5))
    run.record_completion(make_request(arrival=6.0, completion=6.2))
    assert len(run.latencies()) == 2
    assert run.latencies(after=5.0) == [pytest.approx(0.2)]


def test_run_telemetry_by_class():
    run = RunTelemetry()
    fast = make_request()
    fast.traffic_class = "L"
    slow = make_request(completion=2.0)
    slow.traffic_class = "H"
    run.record_completion(fast)
    run.record_completion(slow)
    by_class = run.latencies_by_class()
    assert set(by_class) == {"L", "H"}
    assert by_class["H"] == [pytest.approx(2.0)]


def test_run_telemetry_span_retention_flag():
    keeping = RunTelemetry(keep_spans=True)
    dropping = RunTelemetry(keep_spans=False)
    keeping.record_span(make_span())
    dropping.record_span(make_span())
    assert len(keeping.spans) == 1
    assert len(dropping.spans) == 0
