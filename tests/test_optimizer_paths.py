"""Path-based formulation: candidates, objectives, pruning, caching."""

import pytest

from repro.core.optimizer import (EpochSolver, StructureCache, build_model,
                                  build_path_model, candidate_paths, solve)
from repro.core.optimizer.cache import model_fingerprint
from repro.core.optimizer.contraction import candidate_clusters
from repro.core.optimizer.paths import PATH_OBJECTIVES, extract_path_result
from repro.core.optimizer.solve import _solve_lp
from repro.experiments.scenarios import synthetic_te_problem
from tests.test_optimizer import chain_problem


def path_solve(problem, **kwargs):
    model = build_path_model(problem, **kwargs)
    solution, status = _solve_lp(model)
    return extract_path_result(model, solution, status, 0.0)


class TestCandidates:
    def test_deterministic(self):
        problem = synthetic_te_problem(8, 3, 2, seed=3)
        first = candidate_paths(problem, "class0", "c000", k=4)
        second = candidate_paths(problem, "class0", "c000", k=4)
        assert first == second

    def test_best_candidate_leads(self):
        problem = chain_problem()
        cands = candidate_paths(problem, "default", "west", k=4)
        assert cands[0].score == min(c.score for c in cands)

    def test_candidates_are_distinct_and_diverse(self):
        problem = synthetic_te_problem(10, 3, 2, seed=3)
        cands = candidate_paths(problem, "class0", "c000", k=4)
        assert len({c.assignment for c in cands}) == len(cands)
        root_clusters = {dict(c.assignment)["svc0"] for c in cands}
        # penalized walks must spread the root service across clusters
        assert len(root_clusters) >= 3

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            candidate_paths(chain_problem(), "default", "west", k=0)

    def test_prune_limit_caps_candidate_clusters(self):
        problem = synthetic_te_problem(10, 3, 2, seed=3)
        ranked = candidate_clusters(problem.latency,
                                    problem.deployed_in("svc0"),
                                    "c000", 3)
        assert len(ranked) == 3
        assert ranked == sorted(
            ranked, key=lambda c: (problem.latency.one_way("c000", c), c))
        everyone = candidate_clusters(problem.latency,
                                      problem.deployed_in("svc0"),
                                      "c000", None)
        assert set(ranked) <= set(everyone)
        with pytest.raises(ValueError, match="limit"):
            candidate_clusters(problem.latency, everyone, "c000", 0)


class TestObjectives:
    def test_latency_objective_matches_arc(self):
        problem = chain_problem()
        arc = solve(problem)
        path = path_solve(problem, k=4)
        assert abs(arc.objective - path.objective) <= 1e-9

    def test_min_mlu_bounded_when_feasible(self):
        result = path_solve(chain_problem(west_rps=300.0), k=4,
                            objective="min_mlu")
        assert result.ok
        assert 0.0 < result.objective <= 1.0

    def test_max_throughput_routes_everything_with_headroom(self):
        problem = chain_problem(west_rps=300.0, east_rps=100.0)
        result = path_solve(problem, k=4, objective="max_throughput")
        assert result.ok
        assert abs(result.objective - (-400.0)) <= 1e-6

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown path objective"):
            build_path_model(chain_problem(), objective="fastest")
        assert set(PATH_OBJECTIVES) == {"latency", "min_mlu",
                                        "max_throughput"}


class TestStructureReuse:
    def test_cache_hit_shares_arrays(self):
        problem = synthetic_te_problem(6, 3, 2, seed=5)
        cache = StructureCache()
        first = build_path_model(problem, structure_cache=cache)
        for workload in problem.workloads.values():
            for cluster in workload.demand:
                workload.demand[cluster] *= 1.2
        second = build_path_model(problem, structure_cache=cache)
        assert cache.hits == 1
        # shared structure is what the warm-start identity gate keys on
        assert second.a_eq is first.a_eq

    def test_cache_key_separates_k_and_objective(self):
        problem = synthetic_te_problem(6, 3, 2, seed=5)
        cache = StructureCache()
        build_path_model(problem, k=2, structure_cache=cache)
        build_path_model(problem, k=3, structure_cache=cache)
        build_path_model(problem, k=2, objective="min_mlu",
                         structure_cache=cache)
        assert cache.hits == 0 and cache.misses == 3

    def test_fingerprint_stable_across_builds(self):
        problem = chain_problem()
        assert (model_fingerprint(build_path_model(problem))
                == model_fingerprint(build_path_model(problem)))


class TestEpochSolverPath:
    def test_path_epoch_solver_warm_epoch(self):
        solver = EpochSolver(formulation="path", path_k=4)
        problem = chain_problem()
        first = solver.solve(problem)
        assert first.ok and not first.warm_start
        problem.workloads["default"].demand["west"] = 620.0
        second = solver.solve(problem)
        assert second.ok and second.warm_build and second.warm_start

    def test_rules_weights_normalized(self):
        result = path_solve(chain_problem(), k=4)
        for rule in result.rules().rules:
            assert abs(sum(w for _, w in rule.weights) - 1.0) <= 1e-9

    def test_pruned_solve_stays_feasible(self):
        problem = synthetic_te_problem(10, 3, 2, seed=3)
        pruned = path_solve(problem, k=4, prune_limit=4)
        full = path_solve(problem, k=4)
        assert pruned.ok and full.ok
        # pruning shrinks the candidate pool, never below feasibility
        assert pruned.objective >= full.objective - 1e-9


def test_arc_model_unaffected_by_path_import():
    """Arc builds stay byte-stable regardless of path machinery."""
    problem = chain_problem()
    before = model_fingerprint(build_model(problem))
    build_path_model(problem)
    assert model_fingerprint(build_model(problem)) == before
