"""Parallel sweep executor: determinism, fallbacks, and crash semantics.

The executor's contract is that parallel execution is an *implementation
detail*: whatever worker count is in effect, a sweep's results — down to
the exported CSV bytes — must be identical to a serial run. These tests
pin that contract plus the failure modes around it (worker crashes
propagate, pickling-hostile work falls back in-process, environment
overrides validate).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.export import write_comparison_csv
from repro.baselines.local_only import LocalOnlyPolicy
from repro.core.classes.classifier import AppSpecClassifier
from repro.experiments.harness import compare_policies, run_policy
from repro.experiments.parallel import (SweepExecutor, SweepUnit,
                                        WORKERS_ENV, resolve_workers,
                                        run_unit)
from repro.experiments.scenarios import fig6a_how_much

# ---------------------------------------------------------------- fixtures


def small_setup(duration: float = 4.0, seed: int = 42):
    """A short fig6a run: real policies, real sim, a few seconds of work."""
    return fig6a_how_much(duration=duration, seed=seed)


def _double(value):
    return value * 2


def _crash(value):
    raise ValueError(f"worker crashed on {value}")


def _maybe_call(item):
    """Handles both plain and pickling-hostile (callable) items."""
    return item() if callable(item) else item * 10


class _HostilePolicy(LocalOnlyPolicy):
    """A policy carrying a lambda attribute — cannot cross a pickle."""

    name = "hostile-local"

    def __init__(self):
        self.unpicklable = lambda: None


# ------------------------------------------------------- worker resolution


def test_resolve_workers_explicit_wins(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "7")
    assert resolve_workers(3) == 3


def test_resolve_workers_env_override(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "5")
    assert resolve_workers() == 5


def test_resolve_workers_defaults_to_cpu_count(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers() == (os.cpu_count() or 1)


def test_resolve_workers_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "many")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_workers()


def test_resolve_workers_rejects_nonpositive():
    with pytest.raises(ValueError, match=">= 1"):
        resolve_workers(0)


# ----------------------------------------------------------- map semantics


def test_map_serial_matches_parallel_order():
    items = list(range(10))
    serial = SweepExecutor(workers=1).map(_double, items)
    parallel = SweepExecutor(workers=2).map(_double, items)
    assert serial == parallel == [value * 2 for value in items]


def test_map_single_item_stays_in_process():
    # len(items) <= 1 short-circuits to the serial path even with workers
    executor = SweepExecutor(workers=4)
    assert executor.map(_double, [21]) == [42]


def test_unpicklable_fn_falls_back_to_serial():
    # a closure cannot be pickled; map must still produce correct results
    offset = 5
    executor = SweepExecutor(workers=2)
    assert executor.map(lambda v: v + offset, [1, 2, 3]) == [6, 7, 8]


def test_unpicklable_item_runs_inline_at_its_position():
    items = [1, 2, (lambda: -1), 3]
    results = SweepExecutor(workers=2).map(_maybe_call, items)
    assert results == [10, 20, -1, 30]


def test_worker_crash_propagates_original_exception():
    executor = SweepExecutor(workers=2)
    with pytest.raises(ValueError, match="worker crashed"):
        executor.map(_crash, [1, 2, 3])
    # the pool shut down cleanly: the executor is still usable
    assert executor.map(_double, [1, 2]) == [2, 4]


# ------------------------------------------- end-to-end sweep determinism


def test_parallel_sweep_bytes_identical_to_serial(tmp_path):
    """The determinism-export contract: identical CSV bytes either way."""
    setup = small_setup()
    serial = compare_policies(setup.scenario, list(setup.policies),
                              executor=SweepExecutor(workers=1))
    parallel = compare_policies(setup.scenario, list(setup.policies),
                                executor=SweepExecutor(workers=2))

    serial_path = tmp_path / "serial.csv"
    parallel_path = tmp_path / "parallel.csv"
    assert write_comparison_csv(serial, serial_path) > 0
    assert write_comparison_csv(parallel, parallel_path) > 0
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_run_units_preserves_submission_order():
    setup = small_setup(duration=3.0)
    units = [SweepUnit(setup.scenario, policy, seed=seed,
                       label=f"s{seed}")
             for seed in (42, 7)
             for policy in setup.policies]
    outcomes = SweepExecutor(workers=2).run_units(units)
    assert [o.policy for o in outcomes] == [u.policy.name for u in units]
    # per-unit results equal an individually executed unit
    direct = run_unit(units[0])
    assert outcomes[0].latencies == direct.latencies
    assert outcomes[0].egress_cost == direct.egress_cost


def test_pickling_hostile_policy_still_runs():
    """A policy that can't be pickled silently runs in-process."""
    setup = small_setup(duration=2.0)
    hostile = _HostilePolicy()
    units = [SweepUnit(setup.scenario, hostile),
             SweepUnit(setup.scenario, setup.policies[0])]
    outcomes = SweepExecutor(workers=2).run_units(units)
    assert outcomes[0].policy == "hostile-local"
    assert outcomes[0].latencies
    # and equals a plain serial execution of the same unit
    direct = run_policy(setup.scenario, _HostilePolicy())
    assert outcomes[0].latencies == direct.latencies


# ----------------------------------------------------- classifier reuse


def test_run_policy_accepts_prebuilt_classifier():
    setup = small_setup(duration=2.0)
    scenario = setup.scenario
    shared = AppSpecClassifier(scenario.app)
    with_shared = run_policy(scenario, setup.policies[0], classifier=shared)
    without = run_policy(scenario, setup.policies[0])
    assert with_shared.latencies == without.latencies
    assert with_shared.egress_cost == without.egress_cost


# ------------------------------------------------------------ speedup gate


def test_sweep_speedup_scales_with_host_cores():
    """ISSUE 2 acceptance, made honest: the gate runs on every host.

    The original form skipped below 4 cores, so 1-core CI hosts silently
    "passed" without measuring anything. Now the floor scales with the
    cores the host actually has: 4 workers on >=8 units must beat serial
    >=2.5x given 4+ cores, while smaller hosts still assert that the
    process pool is not catastrophically slower than serial (spawn and
    pickling overhead allowed for). BENCH_sweep.json records the same
    per-effective-core scaling so regressions show up in ``bench-diff``.
    """
    cores = os.cpu_count() or 1
    duration = 6.0 if cores >= 4 else 2.5
    units = []
    for seed in (42, 7, 101, 13):
        setup = small_setup(duration=duration, seed=seed)
        for policy in setup.policies:
            units.append(SweepUnit(setup.scenario, policy))
    assert len(units) >= 8

    serial = SweepExecutor(workers=1)
    serial_outcomes = serial.run_units(units)
    parallel = SweepExecutor(workers=4)
    parallel_outcomes = parallel.run_units(units)

    for ours, theirs in zip(serial_outcomes, parallel_outcomes):
        assert ours.latencies == theirs.latencies
        assert ours.egress_cost == theirs.egress_cost

    speedup = serial.last_elapsed / parallel.last_elapsed
    floor = 2.5 if cores >= 4 else 0.4
    assert speedup >= floor, (
        f"4-worker sweep ran at {speedup:.2f}x serial on a {cores}-core "
        f"host; floor is {floor}x")
