"""Tests for the experiment harness."""

import pytest

from repro.baselines.local_only import LocalOnlyPolicy
from repro.baselines.waterfall import WaterfallConfig, WaterfallPolicy
from repro.core.controller.global_controller import GlobalControllerConfig
from repro.core.controller.policy import SlatePolicy
from repro.experiments.harness import (Scenario, compare_policies,
                                       predict_policy, run_policy)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)


def small_scenario(west_rps=300.0, duration=8.0, epoch=None):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): 100.0})
    return Scenario(name="test", app=app, deployment=deployment,
                    demand=demand, duration=duration, warmup=2.0,
                    seed=7, epoch=epoch)


def test_run_policy_produces_outcome():
    outcome = run_policy(small_scenario(), LocalOnlyPolicy())
    assert outcome.policy == "local-only"
    assert len(outcome.latencies) > 1000
    assert outcome.egress_bytes == 0
    assert "default" in outcome.latencies_by_class


def test_compare_policies_same_request_stream():
    scenario = small_scenario()
    config = WaterfallConfig.from_deployment(scenario.app,
                                             scenario.deployment, 0.8)
    comparison = compare_policies(
        scenario, [LocalOnlyPolicy(), WaterfallPolicy(config)])
    a = comparison.outcome("local-only")
    b = comparison.outcome("waterfall")
    # identical seeds: identical arrival processes
    assert len(a.latencies) == len(b.latencies)


def test_predict_policy_close_to_simulation():
    scenario = small_scenario(west_rps=300.0, duration=30.0)
    policy = LocalOnlyPolicy()
    predicted = predict_policy(scenario, policy)
    outcome = run_policy(scenario, policy)
    measured_mean = sum(outcome.latencies) / len(outcome.latencies)
    assert measured_mean == pytest.approx(predicted.mean_latency, rel=0.08)


def test_slate_static_outperforms_local_only_under_overload():
    scenario = small_scenario(west_rps=650.0, duration=20.0)
    comparison = compare_policies(scenario, [
        SlatePolicy(GlobalControllerConfig()), LocalOnlyPolicy()])
    assert (comparison.latency_ratio("local-only", "slate") > 1.3)


def test_adaptive_slate_converges_via_epochs():
    scenario = small_scenario(west_rps=650.0, duration=20.0, epoch=2.0)
    policy = SlatePolicy(GlobalControllerConfig(), adaptive=True)
    adaptive = run_policy(scenario, policy)
    # the adaptive controller learned demand and offloaded: egress happened
    assert adaptive.egress_bytes > 0
    # ... and escaped the overload local-only suffers (West is unstable at
    # 650 RPS against 500 RPS capacity, so the gap is enormous)
    local = run_policy(scenario, LocalOnlyPolicy())
    adaptive_mean = sum(adaptive.latencies) / len(adaptive.latencies)
    local_mean = sum(local.latencies) / len(local.latencies)
    assert adaptive_mean < local_mean / 5


def test_scenario_validation():
    with pytest.raises(ValueError):
        small_scenario(duration=0.0)
    scenario = small_scenario()
    with pytest.raises(ValueError):
        Scenario(name="bad", app=scenario.app,
                 deployment=scenario.deployment, demand=scenario.demand,
                 duration=5.0, warmup=5.0)


def test_with_demand_replaces_only_demand():
    scenario = small_scenario()
    heavier = scenario.with_demand(scenario.demand.scaled(2.0))
    assert heavier.demand.total_rps() == 2 * scenario.demand.total_rps()
    assert heavier.app is scenario.app
