"""Tests for behaviour-based class derivation (§5 ML direction)."""

import pytest

from repro.core.classes.classifier import canonical_class_name
from repro.core.classes.derivation import (OTHER_CLASS,
                                           derive_classes_by_behavior)
from repro.sim.request import RequestAttributes


def attrs(path, method="GET"):
    return RequestAttributes.make("S", method, path)


def samples_for(path, cost, count, method="GET"):
    return [(attrs(path, method), cost)] * count


def sig(path, method="GET"):
    return canonical_class_name("S", method, path)


def test_similar_costs_merge_into_one_class():
    samples = (samples_for("/a", 0.010, 100)
               + samples_for("/b", 0.011, 100)      # within 30% of /a
               + samples_for("/heavy", 0.100, 100))  # far away
    derived = derive_classes_by_behavior(samples, max_classes=8)
    assert derived.assignment[sig("/a")] == derived.assignment[sig("/b")]
    assert (derived.assignment[sig("/heavy")]
            != derived.assignment[sig("/a")])


def test_distinct_costs_stay_separate():
    samples = samples_for("/l", 0.004, 100) + samples_for("/h", 0.040, 100)
    derived = derive_classes_by_behavior(samples, max_classes=8)
    assert derived.assignment[sig("/l")] != derived.assignment[sig("/h")]
    assert len(derived.class_names) == 2


def test_leader_is_most_popular_member():
    samples = (samples_for("/rare-ish", 0.010, 50)
               + samples_for("/popular", 0.0105, 500))
    derived = derive_classes_by_behavior(samples, max_classes=8)
    assert derived.assignment[sig("/rare-ish")] == sig("/popular")


def test_thin_signatures_fold_to_other():
    samples = (samples_for("/main", 0.010, 100)
               + samples_for("/once", 5.0, 3))   # below min_samples
    derived = derive_classes_by_behavior(samples, min_samples=10)
    assert derived.assignment[sig("/once")] == OTHER_CLASS
    assert derived.support[OTHER_CLASS] == 3


def test_max_classes_cap_folds_smallest_clusters():
    samples = []
    # five well-separated cost levels, decreasing popularity
    for index, count in enumerate((500, 400, 300, 200, 100)):
        samples += samples_for(f"/p{index}", 0.01 * (3 ** index), count)
    derived = derive_classes_by_behavior(samples, max_classes=3,
                                         merge_tolerance=0.2)
    # 2 kept clusters + catch-all
    assert len(derived.class_names) == 3
    assert derived.assignment[sig("/p4")] == OTHER_CLASS   # least popular


def test_classifier_routes_merged_members_to_leader():
    samples = (samples_for("/a", 0.010, 100)
               + samples_for("/b", 0.011, 300))
    derived = derive_classes_by_behavior(samples)
    classifier = derived.classifier()
    leader = sig("/b")   # more popular member names the class
    assert classifier.classify(attrs("/a")) == leader
    assert classifier.classify(attrs("/b")) == leader
    assert classifier.classify(attrs("/never-seen")) == OTHER_CLASS


def test_observation_counts_conserved():
    samples = (samples_for("/a", 0.01, 40) + samples_for("/b", 0.05, 60)
               + samples_for("/c", 9.0, 2))
    derived = derive_classes_by_behavior(samples, min_samples=10)
    assert derived.total_observations == 102
    assert sum(derived.support.values()) == 102


def test_hundreds_of_urls_collapse_to_few_classes():
    """The motivating §5 case: many URLs, few behaviours."""
    samples = []
    for index in range(200):
        cost = 0.005 if index % 2 == 0 else 0.050
        samples += samples_for(f"/url/{index}", cost, 20)
    derived = derive_classes_by_behavior(samples, max_classes=8,
                                         merge_tolerance=0.3)
    assert len(derived.class_names) <= 3   # two behaviours (+ maybe other)


def test_validation():
    with pytest.raises(ValueError):
        derive_classes_by_behavior([], max_classes=0)
    with pytest.raises(ValueError):
        derive_classes_by_behavior([], merge_tolerance=-1)
    with pytest.raises(ValueError):
        derive_classes_by_behavior([(attrs("/x"), -0.5)])
