"""Tests for streaming anomaly detection (z-score spikes, CUSUM drifts)."""

import pytest

from repro.obs import (AnomalyEngine, SignalBus, TOPIC_ANOMALY,
                       TimeSeriesStore)


def make_engine(**kwargs):
    store = TimeSeriesStore()
    kwargs.setdefault("targets", (("metric", "gauge"),))
    return store, AnomalyEngine(store, **kwargs)


def feed(store, engine, values, name="metric", start=0.0, step=1.0,
         **labels):
    now = start
    for value in values:
        store.record(name, now, value, **labels)
        engine.sample(now)
        now += step
    return now


def wiggle(n, base=10.0):
    """A deterministic low-amplitude baseline (sigma > 0, no anomalies)."""
    return [base + (i % 3) * 0.5 for i in range(n)]


def test_spike_fires_zscore_up():
    store, engine = make_engine()
    feed(store, engine, wiggle(24) + [100.0])
    spikes = [e for e in engine.log if e.detector == "zscore"]
    assert spikes and spikes[-1].direction == "up"
    assert spikes[-1].value == pytest.approx(100.0)
    assert spikes[-1].score >= engine.z_threshold


def test_zscore_is_edge_triggered_once_per_excursion():
    store, engine = make_engine()
    feed(store, engine, wiggle(24) + [100.0] * 5)
    spikes = [e for e in engine.log if e.detector == "zscore"
              and e.direction == "up"]
    assert len(spikes) == 1    # the plateau is one excursion, one event


def test_sustained_drift_fires_cusum():
    store, engine = make_engine()
    baseline = wiggle(30)
    drift = [baseline[-1] + 0.6 * i for i in range(1, 31)]
    feed(store, engine, baseline + drift)
    changepoints = [e for e in engine.log if e.detector == "cusum"]
    assert changepoints and changepoints[0].direction == "up"


def test_no_events_before_min_samples():
    store, engine = make_engine(min_samples=8)
    feed(store, engine, [10.0, 10.5, 10.0, 1000.0])
    assert len(engine.log) == 0


def test_counter_series_detects_rate_change_not_growth():
    store, engine = make_engine(targets=(("ctr", "counter"),))
    # steady growth at +5/s: constant rate, only the boring wiggle
    total = 0.0
    values = []
    for i in range(30):
        total += 5.0 + (i % 3) * 0.2
        values.append(total)
    feed(store, engine, values, name="ctr")
    assert len(engine.log) == 0
    # then the rate jumps 20x: the differenced series spikes
    more = [values[-1] + 100.0 * (i + 1) for i in range(4)]
    feed(store, engine, more, name="ctr", start=30.0)
    assert any(e.detector == "zscore" for e in engine.log)


def test_events_published_on_bus():
    bus = SignalBus()
    store = TimeSeriesStore()
    engine = AnomalyEngine(store, bus=bus, targets=(("metric", "gauge"),))
    feed(store, engine, wiggle(24) + [100.0])
    assert len(engine.log) > 0
    signals = bus.history(TOPIC_ANOMALY)
    assert len(signals) == len(engine.log)
    assert signals[0].payload["series"] == "metric"


def test_log_queries_and_render():
    store, engine = make_engine()
    feed(store, engine, wiggle(24) + [100.0], cluster="west")
    log = engine.log
    assert log.times() == sorted(log.times())
    assert log.for_series("metric") == list(log)
    table = log.render()
    assert "detector" in table and f"events={len(log)}" in table
    event = log.events[0]
    assert event.series_id == "metric{cluster=west}"
    assert event.as_dict()["labels"] == {"cluster": "west"}


def test_summary_counts_by_detector_and_series():
    store, engine = make_engine()
    feed(store, engine, wiggle(24) + [100.0])
    summary = engine.summary()
    assert summary["events"] == len(engine.log)
    assert sum(summary["by_detector"].values()) == summary["events"]
    assert sum(summary["by_series"].values()) == summary["events"]
    assert summary["followed_series"] == 1


def test_constant_series_never_divides_by_zero():
    store, engine = make_engine()
    feed(store, engine, [7.0] * 40)
    assert len(engine.log) == 0


def test_validation():
    store = TimeSeriesStore()
    with pytest.raises(ValueError):
        AnomalyEngine(store, z_threshold=0.0)
    with pytest.raises(ValueError):
        AnomalyEngine(store, min_samples=1)
    with pytest.raises(ValueError):
        AnomalyEngine(store, cusum_h=0.0)
