"""Tests for the per-replica service model."""

import statistics

import pytest

from repro.mesh.loadbalancer import (LeastOutstandingBalancer,
                                     RoundRobinBalancer)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.engine import Simulator
from repro.sim.replicas import Replica, ReplicaSet
from repro.sim.runner import MeshSimulation


def make_set(replicas=2, balancer=None):
    sim = Simulator()
    rs = ReplicaSet(sim, "svc", "west", replicas,
                    balancer or LeastOutstandingBalancer())
    return sim, rs


class TestReplica:
    def test_single_server_fifo(self):
        sim = Simulator()
        replica = Replica(sim, "r0")
        done = []
        replica.submit(1.0, lambda t: done.append(("a", t)))
        replica.submit(1.0, lambda t: done.append(("b", t)))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_outstanding_counts_queue_and_running(self):
        sim = Simulator()
        replica = Replica(sim, "r0")
        replica.submit(1.0, lambda t: None)
        replica.submit(1.0, lambda t: None)
        assert replica.outstanding == 2
        sim.run()
        assert replica.outstanding == 0
        assert replica.idle

    def test_draining_rejects_new_work(self):
        sim = Simulator()
        replica = Replica(sim, "r0")
        replica.draining = True
        with pytest.raises(RuntimeError):
            replica.submit(1.0, lambda t: None)

    def test_lifetime_busy(self):
        sim = Simulator()
        replica = Replica(sim, "r0")
        replica.submit(2.0, lambda t: None)
        sim.run()
        assert replica.lifetime_busy_seconds == pytest.approx(2.0)


class TestReplicaSet:
    def test_least_outstanding_spreads_work(self):
        sim, rs = make_set(replicas=2)
        for _ in range(2):
            rs.submit(1.0, lambda t: None)
        # both replicas busy: true parallelism
        assert rs.busy_replicas == 2
        sim.run()
        assert rs.in_flight == 0

    def test_round_robin_can_queue_behind_busy_replica(self):
        sim, rs = make_set(replicas=2, balancer=RoundRobinBalancer())
        done = []
        rs.submit(2.0, lambda t: done.append(t))   # replica 0
        rs.submit(0.1, lambda t: done.append(t))   # replica 1
        rs.submit(0.1, lambda t: done.append(t))   # replica 0 again: queues!
        sim.run()
        # third job waited behind the 2s job even though replica 1 was idle
        assert sorted(done) == [pytest.approx(0.1), pytest.approx(2.0),
                                pytest.approx(2.1)]

    def test_harvest_aggregates(self):
        sim, rs = make_set(replicas=2)
        for _ in range(4):
            rs.submit(1.0, lambda t: None)
        sim.run()
        stats = rs.harvest()
        assert stats.arrivals == 4
        assert stats.completions == 4
        assert stats.utilization == pytest.approx(1.0)   # 4 jobs/2 reps/2 s

    def test_harvest_resets(self):
        sim, rs = make_set()
        rs.submit(1.0, lambda t: None)
        sim.run()
        rs.harvest()
        stats = rs.harvest()
        assert stats.completions == 0
        assert stats.busy_seconds == 0.0

    def test_resize_up(self):
        sim, rs = make_set(replicas=1)
        rs.resize(3)
        assert rs.replicas == 3
        for _ in range(3):
            rs.submit(1.0, lambda t: None)
        assert rs.busy_replicas == 3

    def test_resize_down_drains_busy_replica(self):
        sim, rs = make_set(replicas=2)
        done = []
        rs.submit(2.0, lambda t: done.append(t))
        rs.resize(1)
        assert rs.replicas == 1
        sim.run()
        assert done == [pytest.approx(2.0)]   # drained, not killed
        # lifetime accounting still includes the retired replica's work
        assert rs.lifetime_busy_seconds == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_set(replicas=0)
        sim, rs = make_set()
        with pytest.raises(ValueError):
            rs.submit(-1.0, lambda t: None)
        with pytest.raises(ValueError):
            rs.resize(0)


class TestRunnerIntegration:
    def run_model(self, service_model, intra_lb="least-outstanding",
                  west_rps=400.0):
        app = linear_chain_app(n_services=3, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=6,
                             service_model=service_model, intra_lb=intra_lb)
        sim.run(DemandMatrix({("default", "west"): west_rps}), duration=15.0)
        return sim.telemetry.latencies(after=3.0)

    def test_replica_model_runs_end_to_end(self):
        lats = self.run_model("replicas")
        assert len(lats) > 4000

    def test_central_queue_beats_round_robin_tail(self):
        """The classic ordering: central queue <= LOR <= RR at the tail."""
        pool = self.run_model("pool")
        rr = self.run_model("replicas", intra_lb="round-robin")

        def p99(vals):
            vals = sorted(vals)
            return vals[int(0.99 * len(vals))]

        assert p99(pool) < p99(rr)

    def test_least_outstanding_beats_round_robin_mean(self):
        lor = self.run_model("replicas", intra_lb="least-outstanding")
        rr = self.run_model("replicas", intra_lb="round-robin")
        assert statistics.mean(lor) < statistics.mean(rr)

    def test_invalid_model_rejected(self):
        app = linear_chain_app()
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=2,
            latency=two_region_latency(25.0))
        with pytest.raises(ValueError):
            MeshSimulation(app, deployment, service_model="quantum")
        with pytest.raises(ValueError):
            MeshSimulation(app, deployment, service_model="replicas",
                           intra_lb="psychic")
