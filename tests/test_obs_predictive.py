"""Predictive-pillar wiring: purity, determinism, chaos lead time."""

from __future__ import annotations

from repro.chaos import FaultPlan, run_chaos
from repro.experiments import scenarios as sc
from repro.experiments.harness import run_policy
from repro.obs import Observability


DURATION = 60.0


def _slo_run(observability=None):
    setup = sc.slo_burnrate_setup(duration=DURATION, seed=42)
    obs = (Observability(setup.observability(**observability))
           if observability is not None else None)
    outcome = run_policy(setup.scenario, setup.policy, observability=obs,
                         timeline=setup.timeline)
    return outcome, obs


def test_predictive_pillar_does_not_perturb_the_run():
    """Enabling forecast+anomaly+provenance must leave outcomes identical."""
    baseline, _ = _slo_run(None)
    observed, obs = _slo_run(dict(forecast=True, anomaly=True,
                                  provenance=True))
    assert observed.latencies == baseline.latencies
    assert observed.latencies_by_class == baseline.latencies_by_class
    assert observed.egress_bytes == baseline.egress_bytes
    assert observed.egress_cost == baseline.egress_cost
    # ... while the pillar actually did its work
    assert obs.forecast.samples > 0 and obs.anomaly.samples > 0
    assert len(obs.signals) > 0


def test_same_seed_predictive_run_is_byte_identical():
    def artifacts():
        _, obs = _slo_run(dict(forecast=True, anomaly=True))
        return (obs.signals.to_jsonl_lines(),
                obs.anomaly.log.to_jsonl_lines(),
                obs.breach.to_jsonl_lines(),
                sorted((sid, score.as_dict())
                       for sid, score in obs.forecast.backtests().items()))

    assert artifacts() == artifacts()


def test_predictions_and_anomalies_reach_provenance():
    _, obs = _slo_run(dict(forecast=True, anomaly=True, provenance=True))
    reasons = {snapshot["trigger"]["reason"]
               for snapshot in obs.provenance.snapshots}
    assert "anomaly" in reasons
    # the scenario's surge produces a predicted breach, which also trips
    # the flight recorder
    if obs.breach.predictions:
        assert "predicted_breach" in reasons


def test_chaos_anomaly_lead_time_scored_in_resilience_report():
    """ISSUE acceptance: detectors flag the outage before the control
    plane reacts, and the report carries the lead time."""
    setup = sc.chaos_outage_setup(duration=40.0, seed=42)
    obs = Observability(setup.observability(
        timeseries=True, anomaly=True, scrape_interval=0.5))
    result = run_chaos(setup.scenario, setup.policy, setup.plan,
                       fallback=setup.fallback,
                       max_rule_age=setup.max_rule_age, observability=obs)
    assert result.anomaly_signals(), "the outage must register anomalies"
    twin = sc.chaos_outage_setup(duration=40.0, seed=42)
    baseline = run_chaos(twin.scenario, twin.policy, FaultPlan.empty())
    report = result.resilience(baseline)
    scored = [e for e in report.episodes
              if e.anomaly_detection_seconds is not None]
    assert scored, "at least one fault episode must be anomaly-detected"
    episode = scored[0]
    assert episode.anomaly_detection_seconds >= 0.0
    # detectors see the queue blow-up before the stale-rule guard trips
    assert episode.anomaly_lead_seconds is not None
    assert episode.anomaly_lead_seconds > 0.0
    rendered = report.render()
    assert "anom(s)" in rendered and "lead(s)" in rendered
    payload = report.as_dict()["episodes"][0]
    assert "anomaly_detection_seconds" in payload
    assert "anomaly_lead_seconds" in payload


def test_chaos_without_anomaly_pillar_reports_dashes():
    setup = sc.chaos_outage_setup(duration=30.0, seed=42)
    result = run_chaos(setup.scenario, setup.policy, setup.plan,
                       fallback=setup.fallback,
                       max_rule_age=setup.max_rule_age)
    assert result.anomaly_signals() == []
    twin = sc.chaos_outage_setup(duration=30.0, seed=42)
    baseline = run_chaos(twin.scenario, twin.policy, FaultPlan.empty())
    report = result.resilience(baseline)
    assert all(e.anomaly_detection_seconds is None for e in report.episodes)
    assert all(e.anomaly_lead_seconds is None for e in report.episodes)
