"""Tests for replica pools (multi-server FIFO queues)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.service import ReplicaPool


def make_pool(replicas=2):
    sim = Simulator()
    return sim, ReplicaPool(sim, "svc", "west", replicas)


def test_job_runs_for_its_work_time():
    sim, pool = make_pool()
    done = []
    pool.submit(1.5, done.append)
    sim.run()
    assert done == [1.5]


def test_parallelism_up_to_replica_count():
    sim, pool = make_pool(replicas=2)
    done = []
    for _ in range(2):
        pool.submit(1.0, done.append)
    sim.run()
    # both ran concurrently: both finish at t=1
    assert done == [1.0, 1.0]


def test_fifo_queueing_beyond_replicas():
    sim, pool = make_pool(replicas=1)
    done = []
    pool.submit(1.0, lambda t: done.append(("a", t)))
    pool.submit(1.0, lambda t: done.append(("b", t)))
    pool.submit(1.0, lambda t: done.append(("c", t)))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_on_start_fires_when_replica_free():
    sim, pool = make_pool(replicas=1)
    starts = []
    pool.submit(2.0, lambda t: None, on_start=starts.append)
    pool.submit(1.0, lambda t: None, on_start=starts.append)
    sim.run()
    assert starts == [0.0, 2.0]


def test_in_flight_counts():
    sim, pool = make_pool(replicas=1)
    pool.submit(1.0, lambda t: None)
    pool.submit(1.0, lambda t: None)
    assert pool.busy_replicas == 1
    assert pool.queue_length == 1
    assert pool.in_flight == 2
    sim.run()
    assert pool.in_flight == 0


def test_zero_work_job_completes_immediately():
    sim, pool = make_pool()
    done = []
    pool.submit(0.0, done.append)
    sim.run()
    assert done == [0.0]


def test_negative_work_rejected():
    _, pool = make_pool()
    with pytest.raises(ValueError):
        pool.submit(-1.0, lambda t: None)


def test_zero_replicas_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        ReplicaPool(sim, "svc", "west", 0)


def test_harvest_counts_and_utilization():
    sim, pool = make_pool(replicas=2)
    for _ in range(4):
        pool.submit(1.0, lambda t: None)
    sim.run()   # 4 jobs on 2 replicas: busy 2x1s then 2x1s -> ends at t=2
    stats = pool.harvest()
    assert stats.arrivals == 4
    assert stats.completions == 4
    assert stats.window_seconds == pytest.approx(2.0)
    # 4 replica-seconds of work / 2 replicas / 2 seconds = 1.0
    assert stats.utilization == pytest.approx(1.0)


def test_harvest_resets_window():
    sim, pool = make_pool()
    pool.submit(1.0, lambda t: None)
    sim.run()
    pool.harvest()
    stats = pool.harvest()
    assert stats.arrivals == 0
    assert stats.completions == 0
    assert stats.utilization == 0.0


def test_queue_wait_accounting():
    sim, pool = make_pool(replicas=1)
    pool.submit(2.0, lambda t: None)
    pool.submit(1.0, lambda t: None)   # waits 2 seconds
    sim.run()
    stats = pool.harvest()
    assert stats.queue_wait_seconds == pytest.approx(2.0)
    assert stats.mean_queue_wait == pytest.approx(1.0)


def test_resize_up_starts_queued_jobs():
    sim, pool = make_pool(replicas=1)
    done = []
    pool.submit(2.0, lambda t: done.append(("a", t)))
    pool.submit(2.0, lambda t: done.append(("b", t)))
    sim.schedule(0.5, pool.resize, 2)
    sim.run()
    # b starts at 0.5 after the resize instead of waiting until 2.0
    assert done == [("b", 2.5), ("a", 2.0)] or done == [("a", 2.0), ("b", 2.5)]


def test_resize_down_does_not_preempt():
    sim, pool = make_pool(replicas=2)
    done = []
    pool.submit(2.0, lambda t: done.append(t))
    pool.submit(2.0, lambda t: done.append(t))
    pool.submit(1.0, lambda t: done.append(t))   # queued
    sim.schedule(0.5, pool.resize, 1)
    sim.run()
    # both running jobs finish at 2.0; the queued one starts only after a
    # slot under the new size frees (busy drops to 0 < 1 at t=2)
    assert sorted(done) == [pytest.approx(2.0), pytest.approx(2.0),
                            pytest.approx(3.0)]


def test_utilization_mid_burst_is_fractional():
    sim, pool = make_pool(replicas=2)
    pool.submit(1.0, lambda t: None)   # only one of two replicas busy
    sim.run()
    stats = pool.harvest()
    assert stats.utilization == pytest.approx(0.5)
