"""End-to-end determinism: a run is a pure function of its seed.

Guards the RNG plumbing the whole reproduction rests on: the same
scenario run twice with the same seed must export *byte-identical*
metrics, and a different seed must actually change the draws (catching
accidentally ignored seeds, e.g. a component holding its own generator).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.export import write_latencies_csv
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation

DEMAND = {("default", "west"): 120.0, ("default", "east"): 60.0}


def run_and_export(seed: int, path: Path) -> bytes:
    app = linear_chain_app(n_services=3, exec_time=0.008)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=4,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=seed,
                         trace_sample_rate=0.5)
    sim.run(DemandMatrix(dict(DEMAND)), duration=2.0, epoch=0.5,
            on_epoch=lambda reports, s: None)
    rows = write_latencies_csv(sim.telemetry, path)
    assert rows > 0
    return path.read_bytes()


def test_same_seed_exports_identical_bytes(tmp_path):
    first = run_and_export(1234, tmp_path / "run_a.csv")
    second = run_and_export(1234, tmp_path / "run_b.csv")
    assert first == second


def test_different_seed_exports_differ(tmp_path):
    first = run_and_export(1234, tmp_path / "run_a.csv")
    other = run_and_export(4321, tmp_path / "run_c.csv")
    assert first != other
