"""Warm-started epoch solves: exactness, the reuse ladder, fallbacks.

The warm path must be invisible in the output: on the seed scenarios
(round demand, exactly representable vertices) a warm-started epoch's
solution is *byte-identical* to a cold solve of the same model, and the
``REPRO_DEBUG_INVARIANTS`` shadow check enforces at least tolerance-level
agreement on every instance.
"""

import numpy as np
import pytest

from repro.core.optimizer import (EpochSolver, SolverCache, StructureCache,
                                  build_model, warm_solve)
from repro.core.optimizer.solve import _solve_lp
from repro.core.optimizer.warm import EpochSolver as _EpochSolver
from repro.devtools.invariants import InvariantViolation
from repro.experiments.scenarios import synthetic_te_problem
from tests.test_optimizer import chain_problem


def test_warm_solve_matches_cold_bitwise_on_seed_scenario():
    problem = chain_problem(west_rps=700.0, east_rps=100.0)
    model = build_model(problem)
    cold_x, status = _solve_lp(model)
    assert status == "optimal"
    # demand moves, structure does not: rescatter through a cache
    cache = StructureCache()
    build_model(problem, structure_cache=cache)
    problem.workloads["default"].demand["west"] = 650.0
    moved = build_model(problem, structure_cache=cache)
    warm_x = warm_solve(moved, cold_x)
    assert warm_x is not None
    cold_moved_x, _ = _solve_lp(moved)
    assert np.array_equal(warm_x, cold_moved_x)


def test_epoch_solver_warm_epoch_byte_identical_rules(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_INVARIANTS", "1")
    warm_solver = EpochSolver()
    cold_solver = EpochSolver(warm_start=False, structure_cache=None)

    problem = chain_problem(west_rps=700.0)
    warm_solver.solve(problem)
    # demand moves in place: same structure snapshot, new values
    problem.workloads["default"].demand["west"] = 650.0
    warm_result = warm_solver.solve(problem)
    assert warm_result.warm_build and warm_result.warm_start

    cold_result = cold_solver.solve(chain_problem(west_rps=650.0))
    assert warm_result.objective == cold_result.objective
    assert warm_result.rules().rules == cold_result.rules().rules


def test_reuse_ladder_counters():
    """replay < warm rebuild+resolve < cold, each observable in stats."""
    solver = EpochSolver(cache=SolverCache())
    problem = chain_problem(west_rps=700.0)
    r1 = solver.solve(problem)
    assert not r1.cache_hit and not r1.warm_start

    r2 = solver.solve(problem)        # identical fingerprint: replay
    assert r2.cache_hit

    problem.workloads["default"].demand["west"] = 620.0
    r3 = solver.solve(problem)        # values moved: warm build + solve
    assert r3.warm_build and r3.warm_start and not r3.cache_hit

    stats = solver.stats()
    assert stats["builds"] == 3
    assert stats["replays"] == 1
    assert stats["warm_solves"] == 1
    assert stats["warm_rejects"] == 0
    assert stats["solves"] == 2


def test_solver_path_derived_from_result_flags():
    """replay/warm/cold is derived in exactly one place (PR 8)."""
    solver = EpochSolver(cache=SolverCache())
    problem = chain_problem(west_rps=700.0)
    assert solver.solve(problem).solver_path == "cold"
    assert solver.solve(problem).solver_path == "replay"
    problem.workloads["default"].demand["west"] = 620.0
    assert solver.solve(problem).solver_path == "warm"


def test_recorder_hook_sees_every_ladder_rung():
    """The duck-typed provenance hook: one record_solve per epoch."""
    seen = []

    class Recorder:
        def record_solve(self, info):
            seen.append(info)

    solver = EpochSolver(cache=SolverCache())
    solver.recorder = Recorder()
    problem = chain_problem(west_rps=700.0)
    solver.solve(problem)
    solver.solve(problem)
    problem.workloads["default"].demand["west"] = 620.0
    solver.solve(problem)
    assert [info["solver_path"] for info in seen] == ["cold", "replay",
                                                      "warm"]
    assert seen[2]["warm_build"] is True
    assert seen[0]["pricing"] is None         # cold: no certificate ran
    assert seen[2]["pricing"] == "certified"
    assert seen[0]["formulation"] == solver.formulation
    assert seen[0]["n_variables"] > 0
    # arc formulation has no path-candidate census
    assert all(info["candidates"] is None for info in seen)


def test_warm_start_disabled_by_structure_cache_none():
    solver = EpochSolver(structure_cache=None)
    problem = chain_problem()
    solver.solve(problem)
    problem.workloads["default"].demand["west"] = 620.0
    result = solver.solve(problem)
    # fresh arrays every build: the structure-identity gate never opens
    assert not result.warm_build and not result.warm_start
    assert solver.stats()["warm_solves"] == 0


def test_warm_reject_falls_back_to_cold(monkeypatch):
    monkeypatch.setattr("repro.core.optimizer.warm.warm_solve",
                        lambda model, prev, profiler=None: None)
    solver = EpochSolver()
    problem = chain_problem()
    solver.solve(problem)
    problem.workloads["default"].demand["west"] = 620.0
    result = solver.solve(problem)
    assert result.ok and not result.warm_start
    assert solver.stats()["warm_rejects"] == 1


def test_warm_solve_rejects_mip_and_shape_mismatch():
    problem = chain_problem()
    model = build_model(problem)
    x, _ = _solve_lp(model)
    assert warm_solve(model, x[:-1]) is None     # stale shape
    milp = build_model(problem, max_splits=1)
    assert warm_solve(milp, np.zeros(milp.n_variables)) is None


def test_shadow_invariant_catches_divergence(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_INVARIANTS", "1")
    problem = chain_problem()
    model = build_model(problem)
    x, _ = _solve_lp(model)
    corrupted = x.copy()
    corrupted[0] += 1.0
    with pytest.raises(InvariantViolation):
        _EpochSolver._check_warm_invariant(model, corrupted)


def test_warm_epoch_on_randomized_instance(monkeypatch):
    """Shadow-checked warm solve on a non-round synthetic instance."""
    monkeypatch.setenv("REPRO_DEBUG_INVARIANTS", "1")
    solver = EpochSolver()
    problem = synthetic_te_problem(6, 4, 3, seed=9)
    solver.solve(problem)
    for workload in problem.workloads.values():
        for cluster in workload.demand:
            workload.demand[cluster] *= 1.07
    result = solver.solve(problem)
    assert result.ok and result.warm_build
