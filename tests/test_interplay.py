"""Cross-feature interplay tests: the combinations users will actually run.

Each feature works alone (its own test file proves it); these exercise the
pairings with non-obvious interactions — caches under timeouts, affinity
under retries, fan-out under failures, autoscaling under adaptive routing.
"""

import dataclasses

import pytest

from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.mesh.routing_table import RouteKey
from repro.sim import (AutoscalerConfig, DemandMatrix, DeploymentSpec,
                       HorizontalAutoscaler, anomaly_detection_app,
                       fanout_app, linear_chain_app, two_region_latency)
from repro.sim.apps import AppSpec
from repro.sim.cache import CacheSpec
from repro.sim.runner import MeshSimulation, TimeoutPolicy
from repro.sim.topology import ClusterSpec


def cached_app(sticky=False, ttl=8.0):
    base = anomaly_detection_app()
    spec = dataclasses.replace(base.classes["default"], key_space=300,
                               sticky_affinity=sticky)
    return AppSpec(name=base.name, classes={"default": spec},
                   caches={("MP", "DB"): CacheSpec("MP", "DB", ttl=ttl)})


class TestCacheWithTimeouts:
    def test_cache_hits_never_time_out(self):
        """A hit skips the downstream call entirely — no deadline to hit."""
        app = cached_app(ttl=60.0)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=8,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=51,
                             timeouts=TimeoutPolicy(call_timeout=0.5,
                                                    max_attempts=1))
        sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
        assert sim.edge_cache("MP", "DB", "west").stats.hits > 0
        assert sim.telemetry.failed_requests == []

    def test_timed_out_call_does_not_populate_cache(self):
        """Only successful responses insert; timeouts must not."""
        app = cached_app(ttl=60.0)
        # DB exists only east: every DB call crosses 25 ms each way, but
        # the deadline is shorter than the RTT — every DB call times out
        deployment = DeploymentSpec(
            clusters=[ClusterSpec("west", {"FR": 4, "MP": 8}),
                      ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8})],
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=52,
                             timeouts=TimeoutPolicy(call_timeout=0.04,
                                                    max_attempts=1))
        sim.table.set_weights(RouteKey("MP", "default", "west"),
                              {"west": 1.0})
        sim.run(DemandMatrix({("default", "west"): 50.0}), duration=5.0)
        cache = sim.edge_cache("MP", "DB", "west")
        assert cache.stats.hits == 0
        assert len(cache) == 0
        assert len(sim.telemetry.failed_requests) > 0


class TestAffinityWithRetries:
    def test_affinity_key_respected_on_hedge_exclusion(self):
        """After excluding the timed-out cluster the rendezvous choice
        falls to the remaining candidate — never crashes, never loops."""
        app = dataclasses.replace(
            linear_chain_app(n_services=2).classes["default"],
            key_space=100, sticky_affinity=True)
        app = AppSpec(name="chain", classes={"default": app})
        deployment = DeploymentSpec.uniform(
            ["S1", "S2"], ["west", "east"], replicas=5,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=53,
                             timeouts=TimeoutPolicy(call_timeout=0.3,
                                                    max_attempts=2))
        sim.table.set_weights(RouteKey("S2", "default", "west"),
                              {"east": 1.0})
        sim.sim.schedule(2.0, sim.fail_service, "east", "S2")
        sim.run(DemandMatrix({("default", "west"): 150.0}), duration=8.0)
        # retries rerouted the lost calls to west: no failures
        assert sim.telemetry.failed_requests == []
        assert sim.timed_out_calls > 0


class TestParallelFanoutFailures:
    def test_one_dead_branch_fails_the_fanout_without_deadlock(self):
        app = fanout_app(width=3, exec_time=0.005, parallel=True)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=8,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=54,
                             timeouts=TimeoutPolicy(call_timeout=0.2,
                                                    max_attempts=1))
        # B2 calls from west go to east; kill east B2 so those calls drop
        sim.table.set_weights(RouteKey("B2", "default", "west"),
                              {"east": 1.0})
        sim.sim.schedule(2.0, sim.fail_service, "east", "B2")
        sim.run(DemandMatrix({("default", "west"): 100.0}), duration=6.0)
        # requests settle exactly once: completions + failures = generated
        generated = sum(r.ingress_counts.get("default", 0)
                        for r in sim.harvest_reports())
        settled = (len(sim.telemetry.requests)
                   + len(sim.telemetry.failed_requests))
        assert settled == generated
        assert len(sim.telemetry.failed_requests) > 0


class TestAutoscalerWithAdaptiveRouting:
    def test_routing_and_scaling_together_stay_stable(self):
        app = linear_chain_app(n_services=2, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=4,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=55)
        controller = GlobalController(
            app, deployment, GlobalControllerConfig(learn_profiles=False))
        autoscalers = []
        for cluster in sim.clusters.values():
            autoscaler = HorizontalAutoscaler(
                sim.sim, cluster,
                AutoscalerConfig(target_utilization=0.6,
                                 evaluation_period=5.0,
                                 provisioning_delay=8.0,
                                 min_replicas=4))
            autoscaler.start()
            autoscalers.append(autoscaler)

        def on_epoch(reports, simulation):
            controller.observe(reports)
            result = controller.plan()
            if result is not None:
                result.rules().apply(simulation.table)

        # the autoscaler loop reschedules itself forever; stop it inside
        # simulated time so run()'s drain can complete
        for autoscaler in autoscalers:
            sim.sim.schedule(39.5, autoscaler.stop)
        sim.run(DemandMatrix({("default", "west"): 500.0,
                              ("default", "east"): 100.0}),
                duration=40.0, epoch=4.0, on_epoch=on_epoch)
        # routing offloaded, the autoscaler grew west, nothing failed
        assert sim.clusters["west"].pool("S1").replicas > 4
        tail = sim.telemetry.latencies(after=30.0)
        assert sum(tail) / len(tail) < 0.2

    def test_controller_sees_resized_capacity(self):
        """After a scale-up the controller's next plan can keep more load
        local — the §5 co-design loop closing."""
        app = linear_chain_app(n_services=2, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=4,
            latency=two_region_latency(25.0))
        sim = MeshSimulation(app, deployment, seed=56)
        controller = GlobalController(
            app, deployment, GlobalControllerConfig(learn_profiles=False))
        locals_seen = []

        def on_epoch(reports, simulation):
            controller.observe(reports)
            result = controller.plan()
            if result is not None:
                result.rules().apply(simulation.table)
                locals_seen.append(
                    result.ingress_local_fraction("default", "west"))

        def scale_up():
            sim.clusters["west"].deploy("S1", 8)
            sim.clusters["west"].deploy("S2", 8)
            deployment.cluster("west").replicas["S1"] = 8
            deployment.cluster("west").replicas["S2"] = 8

        sim.sim.schedule(15.0, scale_up)
        sim.run(DemandMatrix({("default", "west"): 500.0}),
                duration=30.0, epoch=3.0, on_epoch=on_epoch)
        # before the resize the plan offloads; afterwards it keeps all local
        assert min(locals_seen[:4]) < 1.0
        assert locals_seen[-1] == pytest.approx(1.0)
