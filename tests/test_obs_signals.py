"""Tests for the deterministic in-sim signal bus."""

import json

import pytest

from repro.obs import (DEFAULT_SIGNAL_CAPACITY, Signal, SignalBus,
                       TOPIC_ANOMALY, TOPIC_FORECAST)


def test_publish_assigns_global_sequence_numbers():
    bus = SignalBus()
    first = bus.publish(TOPIC_FORECAST, 1.0, {"a": 1})
    second = bus.publish(TOPIC_ANOMALY, 1.0, {"b": 2})
    third = bus.publish(TOPIC_FORECAST, 2.0, {"c": 3})
    assert (first.seq, second.seq, third.seq) == (0, 1, 2)
    assert bus.topics() == [TOPIC_ANOMALY, TOPIC_FORECAST]
    assert len(bus) == 3


def test_history_per_topic_oldest_first():
    bus = SignalBus()
    bus.publish("t", 1.0, {"n": 1})
    bus.publish("t", 2.0, {"n": 2})
    history = bus.history("t")
    assert [s.payload["n"] for s in history] == [1, 2]
    assert bus.latest("t").payload == {"n": 2}
    assert bus.history("unused") == [] and bus.latest("unused") is None


def test_capacity_evicts_oldest_and_counts_drops():
    bus = SignalBus(capacity=3)
    for n in range(5):
        bus.publish("t", float(n), {"n": n})
    assert [s.payload["n"] for s in bus.history("t")] == [2, 3, 4]
    assert bus.dropped == {"t": 2}
    # other topics are unaffected by one topic's overflow
    bus.publish("u", 9.0, {})
    assert "u" not in bus.dropped


def test_subscribers_run_synchronously_in_registration_order():
    bus = SignalBus()
    calls = []
    bus.subscribe("t", lambda s: calls.append(("first", s.seq)))
    bus.subscribe("t", lambda s: calls.append(("second", s.seq)))
    bus.subscribe("other", lambda s: calls.append(("other", s.seq)))
    bus.publish("t", 1.0, {})
    assert calls == [("first", 0), ("second", 0)]


def test_jsonl_lines_in_publish_order_across_topics():
    bus = SignalBus()
    bus.publish("b", 1.0, {"n": 0}, source="x")
    bus.publish("a", 2.0, {"n": 1}, source="y")
    bus.publish("b", 3.0, {"n": 2}, source="x")
    rows = [json.loads(line) for line in bus.to_jsonl_lines()]
    assert [row["seq"] for row in rows] == [0, 1, 2]
    assert rows[1]["topic"] == "a" and rows[1]["source"] == "y"


def test_signal_as_dict_shape():
    signal = Signal(topic="t", sim_time=4.5, seq=7, payload={"x": 1},
                    source="forecast")
    assert signal.as_dict() == {"topic": "t", "sim_time": 4.5, "seq": 7,
                                "source": "forecast", "payload": {"x": 1}}


def test_capacity_validation():
    with pytest.raises(ValueError):
        SignalBus(capacity=0)
    assert SignalBus().capacity == DEFAULT_SIGNAL_CAPACITY
