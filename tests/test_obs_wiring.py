"""Harness/simulation wiring: off-by-default purity, coerce, reservoirs."""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much
from repro.mesh.telemetry import RunTelemetry
from repro.obs import Observability, ObservabilityConfig
from repro.sim.request import Request, RequestAttributes
from repro.sim.rng import RngRegistry


# ---------------------------------------------------------------- coerce

def test_coerce_none_and_off_config():
    assert Observability.coerce(None) is None
    assert Observability.coerce(ObservabilityConfig.off()) is None
    assert Observability.coerce(Observability()) is None


def test_coerce_enabled_config_builds_runtime():
    obs = Observability.coerce(ObservabilityConfig(tracing=True))
    assert isinstance(obs, Observability)
    assert obs.tracer is not None
    assert obs.metrics is None and obs.decisions is None


def test_coerce_passes_runtime_through():
    obs = Observability(ObservabilityConfig.full())
    assert Observability.coerce(obs) is obs
    assert obs.tracer is not None and obs.metrics is not None
    assert obs.decisions is not None and obs.profiler is not None


def test_coerce_rejects_junk():
    with pytest.raises(TypeError):
        Observability.coerce("tracing")


# ---------------------------------------- disabled default stays identical

def test_disabled_observability_is_byte_identical():
    """The ISSUE acceptance: off-by-default must not perturb a run."""
    base_setup = fig6a_how_much(duration=6.0)
    baseline = run_policy(base_setup.scenario, base_setup.slate)
    obs_setup = fig6a_how_much(duration=6.0)   # fresh policy state
    observed = run_policy(obs_setup.scenario, obs_setup.slate,
                          observability=ObservabilityConfig.full())
    assert observed.latencies == baseline.latencies
    assert observed.latencies_by_class == baseline.latencies_by_class
    assert observed.egress_bytes == baseline.egress_bytes
    assert observed.egress_cost == baseline.egress_cost


def test_enabled_tracing_captures_every_span():
    setup = fig6a_how_much(duration=4.0)
    obs = Observability(ObservabilityConfig(tracing=True))
    outcome = run_policy(setup.scenario, setup.slate, observability=obs)
    assert obs.tracer.span_count > 0
    # the tracer saw at least every request the warm-up cut kept
    assert len(obs.tracer) >= len(outcome.latencies)
    roots = obs.tracer.tree(obs.tracer.request_ids()[0])
    assert roots and roots[0].depth() >= 1
    # WAN annotation is live: the deployment latency was attached
    assert obs.tracer.latency is not None


# ------------------------------------------------------------- reservoirs

def completed(request_id, latency, traffic_class="default",
              arrival=None) -> Request:
    arrival = float(request_id) if arrival is None else arrival
    return Request(request_id=request_id,
                   attributes=RequestAttributes("A"),
                   ingress_cluster="west", arrival_time=arrival,
                   traffic_class=traffic_class,
                   completion_time=arrival + latency)


def latency_of(request_id, latency) -> float:
    """The float the ``latency`` property really yields (rounding included)."""
    arrival = float(request_id)
    return (arrival + latency) - arrival


def test_reservoir_requires_rng_and_valid_size():
    with pytest.raises(ValueError):
        RunTelemetry(reservoir_size=8)
    with pytest.raises(ValueError):
        RunTelemetry(reservoir_size=0,
                     rng=RngRegistry(0).stream("telemetry/reservoir"))


def test_reservoir_bounds_retention_and_keeps_exact_counts():
    rng = RngRegistry(7).stream("telemetry/reservoir")
    telemetry = RunTelemetry(reservoir_size=16, rng=rng)
    assert telemetry.reservoir_mode
    for rid in range(200):
        telemetry.record_completion(completed(rid, latency=rid * 1e-3))
    telemetry.record_failure(completed(999, latency=0.5))
    assert telemetry.completed_count == 200
    assert telemetry.failed_count == 1
    assert len(telemetry.latencies()) == 16
    assert telemetry.requests == []            # nothing retained per-request
    assert telemetry.failed_requests == []
    assert telemetry.sample_counts() == {"default": (200, 16)}
    # every sampled latency really was observed
    assert (set(telemetry.latencies())
            <= {latency_of(rid, rid * 1e-3) for rid in range(200)})


def test_reservoir_below_capacity_is_exact():
    rng = RngRegistry(7).stream("telemetry/reservoir")
    telemetry = RunTelemetry(reservoir_size=100, rng=rng)
    for rid in range(10):
        telemetry.record_completion(completed(rid, latency=rid * 1e-3))
    assert (telemetry.latencies()
            == [latency_of(rid, rid * 1e-3) for rid in range(10)])


def test_reservoir_is_deterministic_per_seed():
    def sample(seed):
        telemetry = RunTelemetry(
            reservoir_size=8,
            rng=RngRegistry(seed).stream("telemetry/reservoir"))
        for rid in range(500):
            telemetry.record_completion(completed(rid, latency=rid * 1e-3))
        return telemetry.latencies()

    assert sample(3) == sample(3)
    assert sample(3) != sample(4)


def test_reservoir_per_class_and_warmup_cut():
    rng = RngRegistry(1).stream("telemetry/reservoir")
    telemetry = RunTelemetry(reservoir_size=50, rng=rng)
    for rid in range(20):
        telemetry.record_completion(
            completed(rid, latency=0.010, traffic_class="gold"))
    for rid in range(20, 30):
        telemetry.record_completion(
            completed(rid, latency=0.020, traffic_class="bronze"))
    by_class = telemetry.latencies_by_class()
    assert sorted(by_class) == ["bronze", "gold"]
    assert len(by_class["gold"]) == 20 and len(by_class["bronze"]) == 10
    # warm-up cut filters on the *arrival* timestamp kept with each sample
    assert len(telemetry.latencies(after=25.0)) == 5


def test_exact_mode_unchanged_by_default():
    telemetry = RunTelemetry()
    assert not telemetry.reservoir_mode
    for rid in range(5):
        telemetry.record_completion(completed(rid, latency=0.01))
    assert len(telemetry.requests) == 5
    assert telemetry.completed_count == 5


def test_simulation_accepts_latency_reservoir():
    from repro.sim.runner import MeshSimulation

    def simulate(reservoir):
        setup = fig6a_how_much(duration=4.0)
        scenario = setup.scenario
        simulation = MeshSimulation(scenario.app, scenario.deployment,
                                    seed=scenario.seed,
                                    latency_reservoir=reservoir)
        setup.slate.compute_rules(scenario.context()).apply(simulation.table)
        simulation.run(scenario.demand, scenario.duration)
        return simulation.telemetry

    exact = simulate(None)
    sampled = simulate(64)
    assert sampled.reservoir_mode and not exact.reservoir_mode
    # the named reservoir stream must not perturb the simulation itself
    assert sampled.completed_count == exact.completed_count
    assert len(sampled.latencies()) == 64
    assert set(sampled.latencies()) <= set(exact.latencies())
