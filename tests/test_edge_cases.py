"""Edge-case sweep over under-covered paths across modules.

Purely additive coverage: error branches, formatting corners, and small
behaviours that no scenario test reaches naturally.
"""

import pytest

from repro.analysis.report import format_table
from repro.baselines.waterfall import WaterfallConfig, cascade_loads
from repro.core.latency.mm1 import erlang_c
from repro.core.optimizer.piecewise import linearize_convex
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.engine import Simulator
from repro.sim.network import EgressPricing
from repro.sim.workload import RateProfile, RateSegment


class TestEngineCorners:
    def test_cancel_inside_callback(self):
        sim = Simulator()
        seen = []
        later = sim.schedule_cancellable(2.0, seen.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert seen == []

    def test_schedule_at_exactly_now(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(sim.now, seen.append, "now")
        sim.run()
        assert seen == ["now"]

    def test_zero_delay_self_chain_ordered(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.schedule(0.0, lambda: sim.schedule(0.0, seen.append, 3))
        sim.schedule(0.0, seen.append, 2)
        sim.run()
        assert seen == [1, 2, 3]


class TestReportCorners:
    def test_format_table_handles_extremes(self):
        text = format_table(["a", "b"], [[0.0, 1e9], [1e-7, -3.5]])
        assert "0" in text
        assert "1000000000" in text

    def test_format_table_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text
        assert len(text.splitlines()) == 2


class TestPricingCorners:
    def test_zero_price(self):
        pricing = EgressPricing(default_price_per_gb=0.0)
        assert pricing.per_byte("a", "b") == 0.0

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            EgressPricing(default_price_per_gb=-0.01)

    def test_negative_pair_rejected(self):
        with pytest.raises(ValueError):
            EgressPricing(pair_prices_per_gb={("a", "b"): -1.0})


class TestWaterfallCorners:
    def test_zero_exec_time_service_gets_infinite_capacity(self):
        app = linear_chain_app(n_services=2, exec_time=0.010)
        spec = app.classes["default"]
        spec.exec_time["S2"] = 0.0   # e.g. a pure proxy hop
        deployment = DeploymentSpec.uniform(
            ["S1", "S2"], ["west", "east"], replicas=2,
            latency=two_region_latency(25.0))
        config = WaterfallConfig.from_deployment(app, deployment, 0.8)
        assert config.capacity("S2", "west") == float("inf")
        # the cascade keeps everything local for the uncapped service
        split, _ = cascade_loads(
            app, deployment, DemandMatrix({("default", "west"): 500.0}),
            config)
        assert split["S2"]["west"] == {"west": 1.0}

    def test_unknown_pool_capacity_is_zero(self):
        config = WaterfallConfig({("S", "west"): 10.0})
        assert config.capacity("S", "east") == 0.0


class TestQueueingCorners:
    def test_erlang_c_one_server_zero_load(self):
        assert erlang_c(1, 0.0) == 0.0

    def test_linearize_single_segment(self):
        segments = linearize_convex(lambda x: 2 * x, 4.0,
                                    knot_fractions=(0.0, 1.0))
        assert len(segments) == 1
        assert segments[0].slope == pytest.approx(2.0)


class TestWorkloadCorners:
    def test_profile_beyond_end_is_none(self):
        profile = RateProfile([RateSegment(0, 5, 10.0)])
        assert profile.segment_at(5.0) is None
        assert profile.segment_at(100.0) is None

    def test_demand_matrix_unknown_lookup_zero(self):
        demand = DemandMatrix()
        assert demand.rps("any", "where") == 0.0
        assert demand.total_rps() == 0.0
        assert demand.classes() == []


class TestRuleSetCorners:
    def test_empty_rule_set_apply_clears_table(self):
        from repro.core.rules import RuleSet
        from repro.mesh.routing_table import RouteKey, RoutingTable
        table = RoutingTable()
        table.set_weights(RouteKey("S", "c", "w"), {"w": 1.0})
        RuleSet().apply(table)
        assert len(table) == 0

    def test_iteration_order_stable(self):
        from repro.core.rules import RoutingRule, RuleSet
        rules = RuleSet([
            RoutingRule.make("B", "c", "w", {"w": 1.0}),
            RoutingRule.make("A", "c", "w", {"w": 1.0}),
        ])
        assert [r.service for r in rules] == ["B", "A"]   # insertion order
