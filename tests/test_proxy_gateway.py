"""Tests for SLATE-proxy routing decisions and ingress gateways."""

from collections import Counter

import pytest

from repro.mesh.gateway import IngressGateway
from repro.mesh.proxy import RoutingError, SlateProxy
from repro.mesh.routing_table import RouteKey, RoutingTable, WILDCARD_CLASS
from repro.mesh.telemetry import ProxyTelemetry, RunTelemetry
from repro.sim.request import Request, RequestAttributes
from repro.sim.rng import RngRegistry
from repro.sim.topology import ClusterSpec, DeploymentSpec
from repro.sim.network import LatencyMatrix


def make_deployment():
    latency = LatencyMatrix.from_ms(["west", "mid", "east"], {
        ("west", "mid"): 10.0, ("mid", "east"): 10.0, ("west", "east"): 30.0,
    })
    return DeploymentSpec(
        clusters=[
            ClusterSpec("west", {"A": 1}),
            ClusterSpec("mid", {"A": 1, "B": 1}),
            ClusterSpec("east", {"A": 1, "B": 1, "C": 1}),
        ],
        latency=latency)


def make_proxy(cluster="west", table=None):
    deployment = make_deployment()
    table = table if table is not None else RoutingTable()
    rng = RngRegistry(0).stream(f"route/{cluster}")
    return SlateProxy(cluster, table, deployment, deployment.latency, rng)


def test_default_is_local_when_deployed():
    proxy = make_proxy("west")
    assert proxy.choose_cluster("A", "default") == "west"


def test_default_fails_over_to_nearest():
    proxy = make_proxy("west")
    # B runs only in mid and east; mid is closer to west
    assert proxy.choose_cluster("B", "default") == "mid"


def test_undeployed_service_raises():
    proxy = make_proxy("west")
    with pytest.raises(RoutingError):
        proxy.choose_cluster("nope", "default")


def test_rule_weights_followed_empirically():
    table = RoutingTable()
    table.set_weights(RouteKey("A", "default", "west"),
                      {"west": 0.2, "east": 0.8})
    proxy = make_proxy("west", table)
    counts = Counter(proxy.choose_cluster("A", "default")
                     for _ in range(5000))
    assert counts["east"] / 5000 == pytest.approx(0.8, abs=0.03)


def test_rule_restricted_to_deployed_clusters():
    table = RoutingTable()
    # stale rule points C at west, where C does not exist
    table.set_weights(RouteKey("C", "default", "west"),
                      {"west": 0.9, "east": 0.1})
    proxy = make_proxy("west", table)
    picks = {proxy.choose_cluster("C", "default") for _ in range(50)}
    assert picks == {"east"}


def test_rule_with_no_deployed_destination_falls_back():
    table = RoutingTable()
    table.set_weights(RouteKey("B", "default", "west"), {"west": 1.0})
    proxy = make_proxy("west", table)
    # B not in west at all -> fall through to locality failover
    assert proxy.choose_cluster("B", "default") == "mid"


def test_wildcard_rule_applies_to_any_class():
    table = RoutingTable()
    table.set_weights(RouteKey("A", WILDCARD_CLASS, "west"), {"east": 1.0})
    proxy = make_proxy("west", table)
    assert proxy.choose_cluster("A", "whatever") == "east"


def make_gateway(cluster="west"):
    telemetry = ProxyTelemetry(cluster)
    run = RunTelemetry()
    gateway = IngressGateway(cluster, telemetry, run)
    return gateway, telemetry, run


def make_request(cluster="west", path="/"):
    return Request(request_id=1,
                   attributes=RequestAttributes.make("A", path=path),
                   ingress_cluster=cluster, arrival_time=0.0)


def test_gateway_requires_dispatcher():
    gateway, _, _ = make_gateway()
    with pytest.raises(RuntimeError):
        gateway.accept(make_request())


def test_gateway_rejects_foreign_request():
    gateway, _, _ = make_gateway("west")
    gateway.bind(lambda request: None)
    with pytest.raises(ValueError):
        gateway.accept(make_request(cluster="east"))


def test_gateway_classifies_and_dispatches():
    gateway, telemetry, _ = make_gateway()

    class PathClassifier:
        def classify(self, attributes):
            return "heavy" if attributes.path == "/h" else "light"

    seen = []
    gateway.set_classifier(PathClassifier())
    gateway.bind(seen.append)
    gateway.accept(make_request(path="/h"))
    assert seen[0].traffic_class == "heavy"
    report = telemetry.harvest(1.0, pool_stats={})
    assert report.ingress_counts == {"heavy": 1}


def test_gateway_completion_recorded_in_both_sinks():
    gateway, telemetry, run = make_gateway()
    gateway.bind(lambda request: None)
    request = make_request()
    gateway.accept(request)
    gateway.complete(request, now=0.3)
    assert request.latency == pytest.approx(0.3)
    assert run.latencies() == [pytest.approx(0.3)]
    report = telemetry.harvest(1.0, pool_stats={})
    assert report.request_latencies == [pytest.approx(0.3)]


def test_default_classifier_single_class():
    gateway, _, _ = make_gateway()
    seen = []
    gateway.bind(seen.append)
    gateway.accept(make_request())
    assert seen[0].traffic_class == "default"
