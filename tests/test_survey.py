"""Tests for the §2 survey data module."""

from repro.experiments.survey import (RESPONDENTS, SURVEY, SurveyStat,
                                      survey_table)


def test_headline_motivation_numbers_present():
    by_topic = {stat.topic: stat.value for stat in SURVEY}
    # the §2 numbers the paper leans on
    assert by_topic["deploy multi-cluster services"] == "53%"
    assert by_topic["use cross-cluster routing"] == "81%"
    assert by_topic["would find cross-cluster optimization useful"] == "90%"
    assert by_topic["directly optimize latency or cost"] == "0%"


def test_respondent_counts():
    assert RESPONDENTS == 31


def test_usefulness_breakdown_sums_sanely():
    # the per-reason percentages are "of respondents" and may overlap, but
    # none can exceed the 90% headline
    reasons = [stat for stat in SURVEY if stat.topic.startswith("...")]
    assert len(reasons) == 4
    for stat in reasons:
        assert int(stat.value.rstrip("%")) <= 90


def test_table_renders_every_stat():
    text = survey_table()
    for stat in SURVEY:
        assert stat.topic in text
    assert "n=31" in text


def test_stats_are_immutable():
    import dataclasses
    import pytest
    with pytest.raises(dataclasses.FrozenInstanceError):
        SURVEY[0].value = "99%"
