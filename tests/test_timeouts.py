"""Tests for per-call deadlines, retries, and failure propagation."""

import pytest

from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation, TimeoutPolicy
from repro.sim.topology import ClusterSpec


def make_sim(timeouts, replicas_west=5, seed=2, **kwargs):
    app = linear_chain_app(n_services=2, exec_time=0.010)
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"S1": replicas_west,
                                       "S2": replicas_west}),
                  ClusterSpec("east", {"S1": 5, "S2": 5})],
        latency=two_region_latency(25.0))
    return app, MeshSimulation(app, deployment, seed=seed,
                               timeouts=timeouts, **kwargs)


def test_policy_validation():
    with pytest.raises(ValueError):
        TimeoutPolicy(call_timeout=0.0)
    with pytest.raises(ValueError):
        TimeoutPolicy(call_timeout=1.0, max_attempts=0)


def test_no_timeouts_under_healthy_load():
    _, sim = make_sim(TimeoutPolicy(call_timeout=2.0, max_attempts=2))
    sim.run(DemandMatrix({("default", "west"): 100.0}), duration=10.0)
    assert sim.timed_out_calls == 0
    assert sim.telemetry.failed_requests == []
    assert len(sim.telemetry.requests) > 500


def test_overload_triggers_timeouts_and_failures():
    # 1 replica = 100 rps capacity; 300 rps queues unboundedly, so waits
    # blow past the 200ms deadline and retries (also to the hot pool's
    # east alternative) eventually exhaust
    _, sim = make_sim(TimeoutPolicy(call_timeout=0.2, max_attempts=1),
                      replicas_west=1)
    sim.run(DemandMatrix({("default", "west"): 300.0}), duration=10.0)
    assert sim.timed_out_calls > 0
    assert len(sim.telemetry.failed_requests) > 0
    # failed requests record the time-to-error
    failed = sim.telemetry.failed_requests[0]
    assert failed.failed and not failed.done
    assert failed.latency >= 0.2 - 1e-9


def test_retry_reroutes_around_failed_service():
    from repro.mesh.routing_table import RouteKey
    app, sim = make_sim(TimeoutPolicy(call_timeout=0.3, max_attempts=2))
    # route S2 calls east (25 ms of wire), then kill east S2 at t=2:
    # calls in flight on the WAN are dropped, their deadlines fire, and
    # the retry re-routes to west (the failed cluster is excluded)
    sim.table.set_weights(RouteKey("S2", "default", "west"), {"east": 1.0})
    sim.sim.schedule(2.0, sim.fail_service, "east", "S2")
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=10.0)
    assert sim.dropped_calls > 0          # some calls were on the wire
    assert sim.timed_out_calls >= sim.dropped_calls
    # every dropped call was retried successfully: no failed requests
    assert sim.telemetry.failed_requests == []
    reports = {r.cluster: r for r in sim.harvest_reports()}
    assert reports["west"].service_rps("S2", "default") > 0


def test_single_attempt_policy_fails_dropped_calls():
    from repro.mesh.routing_table import RouteKey
    app, sim = make_sim(TimeoutPolicy(call_timeout=0.3, max_attempts=1))
    sim.table.set_weights(RouteKey("S2", "default", "west"), {"east": 1.0})
    sim.sim.schedule(2.0, sim.fail_service, "east", "S2")
    sim.run(DemandMatrix({("default", "west"): 200.0}), duration=5.0)
    assert sim.dropped_calls > 0
    assert len(sim.telemetry.failed_requests) == sim.dropped_calls


def test_orphaned_response_is_dropped_not_double_counted():
    # deadline shorter than the WAN round trip: every remote call times
    # out, and its late response must not complete the request twice
    app, sim = make_sim(TimeoutPolicy(call_timeout=0.04, max_attempts=1))
    from repro.mesh.routing_table import RouteKey
    sim.table.set_weights(RouteKey("S1", "default", "west"), {"east": 1.0})
    sim.run(DemandMatrix({("default", "west"): 50.0}), duration=5.0)
    total = len(sim.telemetry.requests) + len(sim.telemetry.failed_requests)
    generated = sum(r.ingress_counts.get("default", 0)
                    for r in sim.harvest_reports())
    assert total == generated            # each request settled exactly once
    assert len(sim.telemetry.failed_requests) == generated   # all timed out


def test_latencies_exclude_failed_requests():
    _, sim = make_sim(TimeoutPolicy(call_timeout=0.2, max_attempts=1),
                      replicas_west=1)
    sim.run(DemandMatrix({("default", "west"): 300.0}), duration=8.0)
    ok_ids = {r.request_id for r in sim.telemetry.requests}
    failed_ids = {r.request_id for r in sim.telemetry.failed_requests}
    assert not (ok_ids & failed_ids)
    assert all(lat >= 0 for lat in sim.telemetry.latencies())
