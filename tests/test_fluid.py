"""Tests for the fluid-model evaluator."""

import math

import pytest

from repro.analysis.fluid import evaluate_rules
from repro.core.rules import RoutingRule, RuleSet
from repro.mesh.routing_table import WILDCARD_CLASS
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.topology import ClusterSpec


def chain_setup(replicas=5):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    return app, deployment


def local_rules(app, clusters):
    rules = RuleSet()
    for service in app.services():
        for cluster in clusters:
            rules.add(RoutingRule.make(service, WILDCARD_CLASS, cluster,
                                       {cluster: 1.0}))
    return rules


def test_local_rules_load_all_local():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 300.0})
    prediction = evaluate_rules(app, deployment, demand,
                                local_rules(app, ["west", "east"]))
    assert prediction.pool_work[("S1", "west")] == pytest.approx(3.0)
    assert ("S1", "east") not in prediction.pool_work
    assert prediction.egress_cost_rate == 0.0
    assert prediction.cross_cluster_rate() == 0.0


def test_mean_latency_matches_queueing_theory():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 300.0})
    prediction = evaluate_rules(app, deployment, demand,
                                local_rules(app, ["west", "east"]))
    from repro.core.latency.mm1 import mmc_sojourn
    per_service = mmc_sojourn(300.0, 0.010, 5)
    hops = 3 * 2 * 0.00025
    assert prediction.mean_latency == pytest.approx(3 * per_service + hops,
                                                    rel=1e-9)


def test_split_rule_divides_load():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 400.0})
    rules = local_rules(app, ["west", "east"])
    rules = RuleSet([r for r in rules
                     if not (r.service == "S1" and r.src_cluster == "west")])
    rules.add(RoutingRule.make("S1", "default", "west",
                               {"west": 0.75, "east": 0.25}))
    prediction = evaluate_rules(app, deployment, demand, rules)
    assert prediction.pool_work[("S1", "west")] == pytest.approx(3.0)
    assert prediction.pool_work[("S1", "east")] == pytest.approx(1.0)
    # offloaded requests continue at their serving cluster (S2 east local)
    assert prediction.pool_work[("S2", "east")] == pytest.approx(1.0)
    assert prediction.cross_cluster_rate() == pytest.approx(100.0)


def test_unstable_pool_infinite_latency():
    app, deployment = chain_setup(replicas=2)   # capacity 200 rps
    demand = DemandMatrix({("default", "west"): 300.0})
    prediction = evaluate_rules(app, deployment, demand,
                                local_rules(app, ["west", "east"]))
    assert not prediction.stable
    assert prediction.mean_latency == math.inf


def test_default_routing_when_no_rules():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 100.0})
    prediction = evaluate_rules(app, deployment, demand, RuleSet())
    # proxy default: local
    assert prediction.pool_work[("S1", "west")] == pytest.approx(1.0)


def test_default_failover_when_missing_locally():
    app = linear_chain_app(n_services=2, exec_time=0.010)
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"S1": 5}),
                  ClusterSpec("east", {"S1": 5, "S2": 5})],
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 100.0})
    prediction = evaluate_rules(app, deployment, demand, RuleSet())
    assert prediction.pool_work[("S2", "east")] == pytest.approx(1.0)
    assert prediction.cross_cluster_rate() == pytest.approx(100.0)
    assert prediction.egress_cost_rate > 0


def test_egress_cost_accounting():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 100.0})
    rules = local_rules(app, ["west", "east"])
    rules = RuleSet([r for r in rules
                     if not (r.service == "S2" and r.src_cluster == "west")])
    rules.add(RoutingRule.make("S2", "default", "west", {"east": 1.0}))
    prediction = evaluate_rules(app, deployment, demand, rules)
    # 100 rps crossing with 1KB request + 10KB response at $0.02/GB
    expected = 100.0 * (1000 + 10000) * 0.02 / 1e9
    assert prediction.egress_cost_rate == pytest.approx(expected)
    assert prediction.egress_bytes_rate == pytest.approx(100.0 * 11000)


def test_wildcard_rules_apply():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 100.0})
    rules = RuleSet([RoutingRule.make("S1", WILDCARD_CLASS, "west",
                                      {"east": 1.0})])
    prediction = evaluate_rules(app, deployment, demand, rules)
    assert prediction.pool_work[("S1", "east")] == pytest.approx(1.0)


def test_network_delay_rate():
    app, deployment = chain_setup()
    demand = DemandMatrix({("default", "west"): 100.0})
    rules = RuleSet([RoutingRule.make("S1", WILDCARD_CLASS, "west",
                                      {"east": 1.0})])
    prediction = evaluate_rules(app, deployment, demand, rules)
    # ingress crossing west->east at 50ms RTT plus intra hops
    intra = 0.00025 * 2
    expected = 100.0 * (0.050 + 2 * intra)   # ingress WAN + 2 local calls
    assert prediction.network_delay_rate == pytest.approx(expected)
