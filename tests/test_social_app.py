"""Tests exercising the multi-class social-network application.

This app has classes with *different call trees* through shared services —
the §4.4 heterogeneity in full — and is the closest thing in the repo to a
production topology. These are end-to-end tests across apps, optimizer,
simulator, and inference.
"""

import pytest

from repro.core.classes.classifier import AppSpecClassifier
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.core.optimizer import TEProblem, solve
from repro.sim import (DemandMatrix, DeploymentSpec, social_network_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation


@pytest.fixture
def app():
    return social_network_app()


@pytest.fixture
def deployment(app):
    return DeploymentSpec.uniform(app.services(), ["west", "east"],
                                  replicas=8,
                                  latency=two_region_latency(25.0))


def demand(read_west=300.0, compose_west=80.0, read_east=100.0,
           compose_east=30.0):
    return DemandMatrix({
        ("read", "west"): read_west, ("compose", "west"): compose_west,
        ("read", "east"): read_east, ("compose", "east"): compose_east,
    })


def test_classes_have_different_trees(app):
    read_services = set(app.classes["read"].services())
    compose_services = set(app.classes["compose"].services())
    assert "CP" not in read_services
    assert "CP" in compose_services
    assert "TL" in read_services and "TL" in compose_services


def test_compose_fans_out_two_timeline_writes(app):
    tl_edge = [e for e in app.classes["compose"].edges
               if e.callee == "TL"][0]
    assert tl_edge.calls_per_request == 2.0
    assert app.classes["compose"].executions_per_request()["TL"] == 2.0


def test_simulation_runs_both_classes(app, deployment):
    sim = MeshSimulation(app, deployment, seed=13,
                         classifier=AppSpecClassifier(app))
    sim.run(demand(), duration=10.0)
    by_class = sim.telemetry.latencies_by_class(after=2.0)
    assert set(by_class) == {"read", "compose"}
    # compose traverses more compute (8 + 12 + ... ms) than read
    read_mean = sum(by_class["read"]) / len(by_class["read"])
    compose_mean = sum(by_class["compose"]) / len(by_class["compose"])
    assert compose_mean > read_mean


def test_optimizer_solves_multiclass_topology(app, deployment):
    result = solve(TEProblem.from_specs(app, deployment, demand()))
    assert result.ok
    # TL work includes 2x compose fan-out: check conservation
    tl_rate = sum(result.flows.get(("compose", i, src, dst), 0.0)
                  for i, edge in enumerate(app.classes["compose"].edges)
                  if edge.callee == "TL"
                  for src in ("west", "east") for dst in ("west", "east"))
    assert tl_rate == pytest.approx(2 * 110.0, rel=1e-6)


def test_overload_at_compose_only_service_moves_only_compose(app):
    # MD (media) serves only the compose class; make it the bottleneck in
    # west and verify SLATE relieves it without touching read traffic
    from repro.sim.topology import ClusterSpec
    west = {s: 8 for s in app.services()}
    west["MD"] = 3   # capacity 3/0.012 = 250 exec/s
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", west),
                  ClusterSpec("east", {s: 8 for s in app.services()})],
        latency=two_region_latency(25.0))
    heavy = demand(read_west=300.0, compose_west=280.0)
    result = solve(TEProblem.from_specs(app, deployment, heavy))

    def class_crossing(cls):
        return sum(rate for (c, e, src, dst), rate in result.flows.items()
                   if c == cls and src != dst)

    assert class_crossing("compose") > 0.0
    assert class_crossing("read") == pytest.approx(0.0, abs=1e-6)
    assert result.pool_utilization[("MD", "west")] <= 0.951


def test_egress_cost_shapes_compose_placement(app, deployment):
    # compose carries a 200 KB media upload: offloading it is byte-expensive.
    # with a high cost weight the optimizer should prefer moving read
    # (60+100 KB responses) less than... actually verify it reduces egress
    cheap = solve(TEProblem.from_specs(app, deployment,
                                       demand(read_west=700.0,
                                              compose_west=260.0),
                                       cost_weight=0.0))
    pricey = solve(TEProblem.from_specs(app, deployment,
                                        demand(read_west=700.0,
                                               compose_west=260.0),
                                        cost_weight=50000.0))
    assert (pricey.predicted_egress_cost_rate
            <= cheap.predicted_egress_cost_rate + 1e-12)


def test_structure_learned_from_traces_matches_spec(app, deployment):
    sim = MeshSimulation(app, deployment, seed=21,
                         classifier=AppSpecClassifier(app),
                         trace_sample_rate=1.0)
    controller = GlobalController(
        app, deployment, GlobalControllerConfig(learn_structure=True))
    sim.run(demand(), duration=8.0, epoch=4.0,
            on_epoch=lambda reports, s: controller.observe(reports))
    for cls in ("read", "compose"):
        inferred = controller.callgraph.infer_spec(
            cls, app.classes[cls].attributes)
        truth = app.classes[cls]
        assert inferred.root_service == truth.root_service
        assert ({(e.caller, e.callee) for e in inferred.edges}
                == {(e.caller, e.callee) for e in truth.edges})
    tl_edge = [e for e in controller.callgraph.infer_spec(
        "compose", app.classes["compose"].attributes).edges
        if e.callee == "TL"][0]
    assert tl_edge.calls_per_request == pytest.approx(2.0, rel=0.05)
