"""Tests for routing tables and rule normalisation."""

import pytest

from repro.mesh.routing_table import WILDCARD_CLASS, RouteKey, RoutingTable


def key(service="S1", cls="default", src="west"):
    return RouteKey(service, cls, src)


def test_weights_normalised_on_insert():
    table = RoutingTable()
    table.set_weights(key(), {"west": 6, "east": 3, "north": 1})
    weights = table.weights_for("S1", "default", "west")
    assert weights == pytest.approx({"west": 0.6, "east": 0.3, "north": 0.1})


def test_zero_weight_destinations_dropped():
    table = RoutingTable()
    table.set_weights(key(), {"west": 1.0, "east": 0.0})
    assert table.weights_for("S1", "default", "west") == {"west": 1.0}


def test_missing_rule_returns_none():
    table = RoutingTable()
    assert table.weights_for("S1", "default", "west") is None


def test_wildcard_fallback():
    table = RoutingTable()
    table.set_weights(key(cls=WILDCARD_CLASS), {"east": 1.0})
    assert table.weights_for("S1", "anything", "west") == {"east": 1.0}


def test_exact_class_takes_precedence_over_wildcard():
    table = RoutingTable()
    table.set_weights(key(cls=WILDCARD_CLASS), {"east": 1.0})
    table.set_weights(key(cls="H"), {"west": 1.0})
    assert table.weights_for("S1", "H", "west") == {"west": 1.0}
    assert table.weights_for("S1", "L", "west") == {"east": 1.0}


def test_empty_weights_rejected():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.set_weights(key(), {})


def test_negative_weight_rejected():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.set_weights(key(), {"west": -0.5, "east": 1.5})


def test_all_zero_weights_rejected():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.set_weights(key(), {"west": 0.0})


def test_nan_weight_rejected():
    table = RoutingTable()
    with pytest.raises(ValueError):
        table.set_weights(key(), {"west": float("nan")})


def test_replace_all_swaps_atomically():
    table = RoutingTable()
    table.set_weights(key(service="OLD"), {"west": 1.0})
    table.replace_all({key(service="NEW"): {"east": 1.0}})
    assert table.weights_for("OLD", "default", "west") is None
    assert table.weights_for("NEW", "default", "west") == {"east": 1.0}
    assert len(table) == 1


def test_replace_all_validates_before_swapping():
    table = RoutingTable()
    table.set_weights(key(), {"west": 1.0})
    with pytest.raises(ValueError):
        table.replace_all({key(service="BAD"): {}})
    # old rules intact after failed push
    assert table.weights_for("S1", "default", "west") == {"west": 1.0}


def test_version_bumps_on_changes():
    table = RoutingTable()
    v0 = table.version
    table.set_weights(key(), {"west": 1.0})
    table.replace_all({})
    table.clear()
    assert table.version == v0 + 3


def test_rules_returns_copies():
    table = RoutingTable()
    table.set_weights(key(), {"west": 1.0})
    snapshot = table.rules()
    snapshot[key()]["west"] = 99.0
    assert table.weights_for("S1", "default", "west") == {"west": 1.0}
