"""Decision provenance: the per-epoch causal chain + the flight recorder.

Covers the PR 8 acceptance chain end to end: a diurnal run whose records
link demand delta → solver path (replay/warm/cold) → installed rule delta
→ next-epoch scraped effect; anomaly-triggered flight dumps (chaos fault
edges, SLO alerts, invariant failures, fallback trips); and the
perturbation-free guarantee when the pillar is off.
"""

from __future__ import annotations

import json

import pytest

from repro.devtools.invariants import InvariantViolation
from repro.mesh.routing_table import RouteKey
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import (chaos_outage_setup,
                                         diurnal_control_setup)
from repro.obs import (Observability, ObservabilityConfig, FlightRecorder,
                       ProvenanceLog, ProvenanceRecord, telemetry_digest,
                       write_flight_dump, write_provenance_jsonl)
from repro.obs.provenance import EpochEffect


# ------------------------------------------------------------ unit layer

def make_record(epoch=0, sim_time=10.0, outcome="solved", **overrides):
    fields = dict(
        epoch=epoch, sim_time=sim_time, outcome=outcome,
        telemetry_digest="abc", report_count=2,
        demand={"default": {"west": 200.0, "east": 100.0}},
        demand_delta={"default": {"west": 25.0, "east": -25.0}},
        solver={"solver_path": "warm", "warm_build": True,
                "pricing": "certified"},
        objective=1.5, fingerprint="f00",
        rule_deltas={"default": {"added": 0, "removed": 0, "changed": 1,
                                 "churn": 0.2,
                                 "shift": {"east": 0.1, "west": -0.1}}},
        rule_changes=[], weight_churn=0.2)
    fields.update(overrides)
    return ProvenanceRecord(**fields)


def test_record_accessors_and_dict_roundtrip():
    record = make_record()
    assert record.demand_delta_l1() == pytest.approx(50.0)
    assert record.demand_delta_l1("default") == pytest.approx(50.0)
    assert record.demand_delta_l1("other") == 0.0
    assert record.shift_for("default") == {"east": 0.1, "west": -0.1}
    assert record.churn_for("default") == pytest.approx(0.2)
    assert record.churn_for("other") == 0.0
    payload = record.as_dict()
    json.dumps(payload)                      # JSONL-safe
    assert payload["solver"]["solver_path"] == "warm"
    assert payload["effect"] is None


def test_flight_ring_bounds_and_counts_drops():
    ring = FlightRecorder(capacity=4)
    for index in range(7):
        ring.append(make_record(epoch=index, sim_time=float(index)))
    assert len(ring) == 4
    assert ring.dropped_records == 3
    assert [r.epoch for r in ring.records()] == [3, 4, 5, 6]
    with pytest.raises(ValueError):
        FlightRecorder(capacity=1)


def test_flight_snapshot_freezes_ring():
    ring = FlightRecorder(capacity=4)
    ring.append(make_record())
    dump = ring.snapshot({"reason": "test", "sim_time": 1.0},
                         {"scenario": "s", "seed": 7}, None)
    assert dump["run"] == {"scenario": "s", "seed": 7}
    assert dump["ring_capacity"] == 4
    assert len(dump["records"]) == 1
    # the dump is a copy of state, not a live view
    ring.append(make_record(epoch=1))
    assert len(dump["records"]) == 1
    assert ring.snapshots == [dump]


def test_telemetry_digest_is_content_addressed():
    from types import SimpleNamespace

    def report(cluster, start=0.0, counts=None):
        return SimpleNamespace(cluster=cluster, start_time=start,
                               duration=2.0,
                               ingress_counts=counts or {"default": 10},
                               request_latencies=[0.01] * 10)

    a = telemetry_digest([report("west"), report("east")])
    # order-insensitive: the payload sorts by (cluster, start)
    assert telemetry_digest([report("east"), report("west")]) == a
    assert telemetry_digest([report("west"),
                             report("east", counts={"default": 11})]) != a
    assert len(a) == 16


def test_seed_rules_baselines_the_first_diff():
    log = ProvenanceLog()
    initial = {RouteKey("S1", "default", "west"): {"west": 1.0}}
    log.seed_rules(initial)
    record = log.record_epoch(10.0, rules=dict(initial))
    assert record.weight_churn == 0.0
    assert record.rule_deltas == {}
    # ...whereas an unseeded log would have claimed the install
    unseeded = ProvenanceLog()
    claimed = unseeded.record_epoch(10.0, rules=dict(initial))
    assert claimed.rule_deltas["default"]["added"] == 1


def test_record_epoch_diffs_rules_and_closes_effect_windows():
    key = RouteKey("S1", "default", "west")
    log = ProvenanceLog()
    log.seed_rules({key: {"west": 1.0}})
    first = log.record_epoch(
        10.0, rules={key: {"west": 0.8, "east": 0.2}})
    second = log.record_epoch(
        20.0, rules={key: {"west": 0.8, "east": 0.2}})
    delta = first.rule_deltas["default"]
    assert delta["changed"] == 1
    assert delta["churn"] == pytest.approx(0.4)   # |Δwest| + |Δeast|
    assert first.shift_for("default")["east"] == pytest.approx(0.2)
    assert first.rule_changes[0]["new"] == {"west": 0.8, "east": 0.2}
    assert first.rule_changes[0]["kind"] == "changed"
    assert second.weight_churn == 0.0
    # without a bound TimeSeriesStore the window closes but cannot be
    # attributed: effect stays None rather than inventing numbers
    log.finalize(30.0)
    assert first.effect is None and second.effect is None


def test_record_anomaly_without_store_snapshots_ring():
    log = ProvenanceLog()
    log.bind_run("unit", 3, policy="slate")
    log.record_epoch(10.0, rules={})
    dump = log.record_anomaly(10.0, "invariant", {"error": "boom"})
    assert dump["trigger"]["reason"] == "invariant"
    assert dump["run"] == {"scenario": "unit", "seed": 3, "policy": "slate"}
    assert dump["timeseries"] is None        # no store bound
    assert log.snapshots == [dump]


# --------------------------------------------- diurnal acceptance chain

@pytest.fixture(scope="module")
def diurnal_log():
    # replicas=2: peak demand exceeds one cluster's capacity, so epochs
    # actually shift weight cross-cluster (see diurnal_control_setup)
    setup = diurnal_control_setup(duration=120.0, replicas=2)
    obs = Observability(ObservabilityConfig(
        provenance=True, decisions=True, timeseries=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    return obs


def test_diurnal_records_cover_reuse_ladder(diurnal_log):
    records = diurnal_log.provenance.records
    assert len(records) == 12                 # 120 s / 10 s epochs
    paths = {r.solver["solver_path"] for r in records
             if r.solver is not None}
    assert {"cold", "warm", "replay"} <= paths
    solved = [r for r in records if r.outcome == "solved"]
    assert solved and all(r.objective is not None and r.fingerprint
                          for r in solved)
    # the recorder hook fed the warm epochs their certificate outcome
    warm = [r for r in records
            if r.solver and r.solver["solver_path"] == "warm"]
    assert warm and all(r.solver["pricing"] == "certified" for r in warm)
    assert all(r.solver["candidates"] is None or
               r.solver["candidates"]["paths"] > 0 for r in warm)


def test_diurnal_chain_links_cause_to_effect(diurnal_log):
    """The acceptance bar: demand delta → solve → rule delta → shift."""
    records = diurnal_log.provenance.records
    shifted = [r for r in records
               if r.churn_for("default") > 0 and r.effect is not None]
    assert shifted, "no epoch shifted weight — scenario regressed"
    for record in shifted:
        # (a) observed: a telemetry digest plus a real demand movement
        assert record.telemetry_digest and record.report_count == 2
        assert record.demand_delta_l1("default") > 0
        # (b) decided: the epoch took a concrete reuse-ladder rung
        assert record.solver["solver_path"] in ("replay", "warm", "cold")
        # (c) shipped: a per-class diff with a net destination shift
        shift = record.shift_for("default")
        assert shift and sum(shift.values()) == pytest.approx(0.0, abs=1e-6)
        # (d) effect: the scrape loop saw exactly the churn we installed
        assert record.effect.weight_churn == pytest.approx(
            record.weight_churn, abs=1e-6)
        assert record.effect.egress       # per-(src,dst) attribution


def test_explain_renders_full_narrative(diurnal_log):
    text = diurnal_log.provenance.explain("default")
    for fragment in ("why did traffic for class 'default' shift",
                     "observed:", "demand[default]:", "decided:",
                     "shipped:", "net weight shift", "effect over"):
        assert fragment in text, f"missing {fragment!r}:\n{text}"


def test_explain_at_picks_epoch_by_time(diurnal_log):
    text = diurnal_log.provenance.explain("default", at=50.0)
    assert "at t=50 (epoch 4)" in text
    # before the first epoch boundary falls back to the oldest record
    assert "(epoch 0)" in diurnal_log.provenance.explain("default", at=0.0)


def test_render_and_jsonl_exports(diurnal_log, tmp_path):
    log = diurnal_log.provenance
    table = log.render()
    assert "records=12" in table and "replay" in table
    path = tmp_path / "prov.jsonl"
    count = write_provenance_jsonl(log, path)
    lines = path.read_text().strip().splitlines()
    assert count == len(lines) == 12
    restored = [json.loads(line) for line in lines]
    assert restored[0]["epoch"] == 0
    assert {r["outcome"] for r in restored} <= {
        "solved", "replayed", "no-demand"}


def test_empty_log_explains_gracefully():
    assert "no provenance records" in ProvenanceLog().explain("default")


# -------------------------------------------------- anomaly triggers

def test_chaos_fault_triggers_flight_dump(tmp_path):
    """The injected FaultRecord freezes a ring that reaches the fallback
    rule install — the §5 outage story end to end."""
    from repro.chaos import run_chaos

    setup = chaos_outage_setup(duration=40.0)
    obs = Observability(ObservabilityConfig(
        provenance=True, decisions=True, timeseries=True))
    run_chaos(setup.scenario, setup.policy, setup.plan,
              fallback=setup.fallback, max_rule_age=setup.max_rule_age,
              observability=obs)
    log = obs.provenance
    snapshots = log.snapshots
    reasons = [s["trigger"]["reason"] for s in snapshots]
    # injection edge, the tripped guard, and both recovery edges
    assert "fault" in reasons
    assert "fallback" in reasons
    assert "fault_recovered" in reasons
    fault = next(s for s in snapshots if s["trigger"]["reason"] == "fault")
    assert fault["trigger"]["detail"]["kind"] in ("ControlPlaneOutage",
                                                  "WanFault")
    assert fault["run"]["scenario"] == "chaos-outage"
    assert fault["run"]["seed"] == 42
    # the recovery dump's ring contains the outage epochs and the
    # fallback install the dead controller never saw
    recovered = next(s for s in snapshots
                     if s["trigger"]["reason"] == "fault_recovered")
    ring = recovered["records"]
    assert any(r["outcome"] == "outage" for r in ring)
    assert any(r["fallback_clusters"] for r in ring)
    tripped = next(r for r in ring if r["fallback_clusters"])
    assert set(tripped["fallback_clusters"]) == {"west", "east"}
    assert tripped["weight_churn"] > 0        # the fallback swap itself
    # dumps are written one JSON document per line
    out = tmp_path / "flight.jsonl"
    assert write_flight_dump(log, out) == len(snapshots)
    first = json.loads(out.read_text().splitlines()[0])
    assert first["trigger"]["reason"] == reasons[0]


def test_slo_alert_triggers_snapshot():
    from repro.experiments.scenarios import slo_burnrate_setup

    setup = slo_burnrate_setup()
    obs = Observability(setup.observability(provenance=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    alerts = [s for s in obs.provenance.snapshots
              if s["trigger"]["reason"] == "slo_alert"]
    assert alerts, "the surge scenario must fire at least one alert"
    assert alerts[0]["trigger"]["detail"]["rule"] == "latency-250ms"
    assert alerts[0]["timeseries"] is not None


def test_invariant_violation_freezes_recorder():
    class ExplodingPolicy:
        name = "exploding"
        controller = None

        def compute_rules(self, ctx):
            from repro.baselines.locality import LocalityFailoverPolicy
            return LocalityFailoverPolicy().compute_rules(ctx)

        def on_epoch(self, reports, ctx):
            raise InvariantViolation("synthetic failure")

    setup = diurnal_control_setup(duration=30.0)
    obs = Observability(ObservabilityConfig(provenance=True,
                                            timeseries=True))
    with pytest.raises(InvariantViolation):
        run_policy(setup.scenario, ExplodingPolicy(), observability=obs,
                   timeline=setup.timeline)
    snapshots = obs.provenance.snapshots
    assert len(snapshots) == 1
    assert snapshots[0]["trigger"]["reason"] == "invariant"
    assert snapshots[0]["trigger"]["detail"]["error"] == "synthetic failure"


# ---------------------------------------------- perturbation-free bar

def test_disabled_provenance_is_byte_identical():
    """Provenance off (the default) must not perturb a run at all."""
    base = diurnal_control_setup(duration=60.0, replicas=2)
    baseline = run_policy(base.scenario, base.policy,
                          timeline=base.timeline)
    prov = diurnal_control_setup(duration=60.0, replicas=2)
    obs = Observability(ObservabilityConfig(
        provenance=True, decisions=True, timeseries=True))
    observed = run_policy(prov.scenario, prov.policy, observability=obs,
                          timeline=prov.timeline)
    assert observed.latencies == baseline.latencies
    assert observed.egress_bytes == baseline.egress_bytes
    assert observed.egress_cost == baseline.egress_cost
    assert len(obs.provenance.records) > 0    # and it really recorded


def test_provenance_config_implies_timeseries():
    config = ObservabilityConfig(provenance=True)
    assert config.enabled
    obs = Observability(config)
    assert obs.provenance is not None
    assert obs.timeseries is not None         # effect attribution source
    assert Observability.coerce(ObservabilityConfig()) is None


# ------------------------------------------------ profiler satellites

def test_optimizer_profiler_sections_present():
    """The fine-grained sections land inside the legacy build/solve ones."""
    setup = diurnal_control_setup(duration=60.0, replicas=2)
    obs = Observability(ObservabilityConfig(profiling=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    sections = set(obs.profiler.section_names())
    assert {"vectorized_build", "warm_solve",
            "pricing_certificate"} <= sections
    stats = obs.profiler.stats("pricing_certificate")
    assert stats.count >= 1
    # every warm solve ran exactly one certificate check
    assert obs.profiler.stats("warm_solve").count == stats.count


def test_epoch_effect_dict_shape():
    effect = EpochEffect(start=1.0, end=2.0, weight_churn=0.5,
                         egress={"a->b": {"rate": 1.0, "delta": 0.5}},
                         latency={"default": {"p95": 0.1, "delta": None}})
    payload = effect.as_dict()
    json.dumps(payload)
    assert payload["egress"]["a->b"]["delta"] == 0.5
