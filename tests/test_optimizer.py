"""Tests for the TE problem, LP/MILP model, and solver."""

import pytest

from repro.core.optimizer import (INGRESS_EDGE, SolverError, TEProblem,
                                  build_model, solve)
from repro.core.optimizer.problem import ClassWorkload
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_class_app, two_region_latency)
from repro.sim.topology import ClusterSpec


def chain_problem(west_rps=700.0, east_rps=100.0, replicas=5,
                  cost_weight=0.0, **kwargs):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=replicas,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): west_rps,
                           ("default", "east"): east_rps})
    return TEProblem.from_specs(app, deployment, demand,
                                cost_weight=cost_weight, **kwargs)


class TestProblem:
    def test_from_specs_structure(self):
        problem = chain_problem()
        assert problem.clusters == ["west", "east"]
        assert problem.replica_count("S1", "west") == 5
        assert problem.workloads["default"].demand == {
            "west": 700.0, "east": 100.0}
        assert problem.total_demand() == 800.0

    def test_pools_only_deployed_and_used(self):
        problem = chain_problem()
        assert len(problem.pools()) == 6   # 3 services x 2 clusters

    def test_validation_unknown_cluster_in_demand(self):
        problem = chain_problem()
        with pytest.raises(ValueError, match="unknown cluster"):
            TEProblem(
                clusters=problem.clusters,
                latency=problem.latency, pricing=problem.pricing,
                replicas=problem.replicas,
                workloads={"default": ClassWorkload(
                    spec=problem.workloads["default"].spec,
                    demand={"mars": 1.0})})

    def test_validation_rho_max(self):
        with pytest.raises(ValueError):
            chain_problem(rho_max=1.5)

    def test_validation_service_deployed_nowhere(self):
        app = linear_chain_app()
        deployment = DeploymentSpec(
            clusters=[ClusterSpec("west", {"S1": 1, "S2": 1})],   # no S3
            latency=two_region_latency(10.0, west="west", east="unused"))
        demand = DemandMatrix({("default", "west"): 10.0})
        with pytest.raises(ValueError, match="deployed nowhere"):
            TEProblem.from_specs(app, deployment, demand)


class TestModel:
    def test_variable_counts(self):
        model = build_model(chain_problem())
        # 4 edges x 2 src x 2 dst = wait: ingress edge has 2 sources
        # (west, east demand), edges have 2 sources (deployed callers)
        route_vars = len(model.route_vars)
        assert route_vars == (2 * 2) * 3   # 3 logical edges incl. ingress
        assert len(model.pool_columns) == 6

    def test_milp_flag(self):
        assert not build_model(chain_problem()).is_mip
        assert build_model(chain_problem(), max_splits=1).is_mip

    def test_invalid_max_splits(self):
        with pytest.raises(ValueError):
            build_model(chain_problem(), max_splits=0)


class TestSolve:
    def test_light_load_stays_local(self):
        result = solve(chain_problem(west_rps=200.0, east_rps=100.0))
        assert result.ok
        assert result.ingress_local_fraction("default", "west") == pytest.approx(1.0)
        assert result.predicted_egress_cost_rate == 0.0

    def test_overload_offloads_just_enough(self):
        result = solve(chain_problem(west_rps=700.0, east_rps=100.0))
        local = result.ingress_local_fraction("default", "west")
        assert 0.4 < local < 0.9   # offloads some, not all
        # capacity respected everywhere
        for rho in result.pool_utilization.values():
            assert rho <= 0.951

    def test_demand_conserved_in_flows(self):
        result = solve(chain_problem())
        ingress_total = sum(
            rate for (cls, e, src, dst), rate in result.flows.items()
            if e == INGRESS_EDGE)
        assert ingress_total == pytest.approx(800.0, rel=1e-6)

    def test_downstream_executions_match_demand(self):
        result = solve(chain_problem())
        for edge_index in (0, 1):   # S1->S2, S2->S3
            edge_total = sum(
                rate for (cls, e, src, dst), rate in result.flows.items()
                if e == edge_index)
            assert edge_total == pytest.approx(800.0, rel=1e-6)

    def test_infeasible_demand_raises(self):
        # total capacity 2 clusters x 5 replicas x 100 rps = 1000/service
        with pytest.raises(SolverError):
            solve(chain_problem(west_rps=1500.0, east_rps=100.0))

    def test_predicted_latency_reasonable(self):
        result = solve(chain_problem(west_rps=200.0, east_rps=100.0))
        # lightly loaded local chain: ~3x10ms + small queueing
        assert 0.030 < result.predicted_mean_latency < 0.060

    def test_higher_rtt_means_less_offload(self):
        def local_fraction(one_way_ms):
            app = linear_chain_app(n_services=3, exec_time=0.010)
            deployment = DeploymentSpec.uniform(
                app.services(), ["west", "east"], replicas=5,
                latency=two_region_latency(one_way_ms))
            demand = DemandMatrix({("default", "west"): 600.0,
                                   ("default", "east"): 100.0})
            result = solve(TEProblem.from_specs(app, deployment, demand))
            return result.ingress_local_fraction("default", "west")

        assert local_fraction(5.0) <= local_fraction(50.0)

    def test_cost_weight_keeps_traffic_local(self):
        cheap = solve(chain_problem(west_rps=600.0, cost_weight=0.0))
        pricey = solve(chain_problem(west_rps=600.0, cost_weight=1e7))
        assert (pricey.ingress_local_fraction("default", "west")
                >= cheap.ingress_local_fraction("default", "west"))

    def test_rules_cover_loaded_sources(self):
        result = solve(chain_problem())
        rules = result.rules()
        assert rules.rule_for("S1", "default", "west") is not None
        assert rules.rule_for("S2", "default", "west") is not None
        # east never has load at S-services from west only when offloaded
        assert len(rules) >= 4

    def test_partial_replication_forces_remote(self):
        app = linear_chain_app(n_services=2, exec_time=0.010)
        deployment = DeploymentSpec(
            clusters=[ClusterSpec("west", {"S1": 5}),
                      ClusterSpec("east", {"S1": 5, "S2": 5})],
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("default", "west"): 100.0})
        result = solve(TEProblem.from_specs(app, deployment, demand))
        # S2 only exists east: all S1->S2 flow crosses
        crossing = sum(rate for (cls, e, src, dst), rate
                       in result.flows.items()
                       if e == 0 and src != dst)
        assert crossing == pytest.approx(100.0, rel=1e-6)

    def test_per_class_routing_offloads_heavy_first(self):
        app = two_class_app(light_exec=0.003, heavy_exec=0.045, n_services=2)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=8,
            latency=two_region_latency(25.0))
        demand = DemandMatrix({("L", "west"): 450.0, ("H", "west"): 130.0,
                               ("L", "east"): 100.0, ("H", "east"): 30.0})
        result = solve(TEProblem.from_specs(app, deployment, demand))
        light_local = result.ingress_local_fraction("L", "west")
        heavy_local = result.ingress_local_fraction("H", "west")
        assert heavy_local < light_local
        assert light_local == pytest.approx(1.0, abs=0.01)

    def test_milp_single_split_routes_whole_rules(self):
        # 450 RPS fits in one cluster, so atomic (no-split) routing exists
        result = solve(chain_problem(west_rps=450.0, east_rps=100.0),
                       max_splits=1)
        rules = result.rules()
        assert len(rules) > 0
        for rule in rules:
            assert len(rule.weights) == 1   # no fractional splits allowed

    def test_milp_objective_no_better_than_lp(self):
        problem = chain_problem(west_rps=450.0, east_rps=100.0)
        lp = solve(problem)
        milp = solve(problem, max_splits=1)
        assert milp.objective >= lp.objective - 1e-6

    def test_milp_infeasible_when_no_atomic_assignment_fits(self):
        # 560 RPS exceeds any single pool's 475-RPS cap, so forbidding
        # splits makes the instance infeasible — and the solver says so
        with pytest.raises(SolverError):
            solve(chain_problem(west_rps=560.0, east_rps=100.0),
                  max_splits=1)

    def test_solve_time_recorded(self):
        result = solve(chain_problem())
        assert result.solve_time > 0
