"""Tests for deterministic random streams."""

import pytest

from repro.sim.rng import MAX_SEED, RngRegistry, stable_stream_key


def test_same_seed_same_draws():
    a = RngRegistry(seed=5).stream("arrivals")
    b = RngRegistry(seed=5).stream("arrivals")
    assert list(a.random(10)) == list(b.random(10))


def test_different_seeds_differ():
    a = RngRegistry(seed=5).stream("arrivals")
    b = RngRegistry(seed=6).stream("arrivals")
    assert list(a.random(10)) != list(b.random(10))


def test_streams_are_independent_of_creation_order():
    reg1 = RngRegistry(seed=5)
    first = list(reg1.stream("a").random(5))
    _ = reg1.stream("b")

    reg2 = RngRegistry(seed=5)
    _ = reg2.stream("b")          # created in the opposite order
    second = list(reg2.stream("a").random(5))
    assert first == second


def test_stream_caching_returns_same_generator():
    reg = RngRegistry(seed=0)
    assert reg.stream("x") is reg.stream("x")


def test_distinct_names_distinct_streams():
    reg = RngRegistry(seed=0)
    assert (list(reg.stream("a").random(5))
            != list(reg.stream("b").random(5)))


def test_stable_stream_key_is_stable():
    # regression pin: these values must never change across releases,
    # or every seeded experiment silently changes
    assert stable_stream_key("arrivals") == stable_stream_key("arrivals")
    assert stable_stream_key("a") != stable_stream_key("b")
    assert 0 <= stable_stream_key("anything") < 2**64


def test_fork_gives_unrelated_registry():
    base = RngRegistry(seed=5)
    fork = base.fork(1)
    assert fork.seed != base.seed
    assert (list(base.stream("a").random(5))
            != list(fork.stream("a").random(5)))


def test_fork_is_deterministic():
    assert RngRegistry(seed=5).fork(2).seed == RngRegistry(seed=5).fork(2).seed


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(seed=-1)


def test_oversized_seed_rejected():
    with pytest.raises(ValueError, match="64 bits"):
        RngRegistry(seed=MAX_SEED + 1)


def test_max_seed_accepted():
    assert RngRegistry(seed=MAX_SEED).seed == MAX_SEED
