"""Decision log: unit semantics plus the diurnal solve/replay acceptance."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.core.rules import RoutingRule, RuleSet
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import diurnal_control_setup
from repro.obs import (DecisionLog, EpochDecision, Observability,
                       ObservabilityConfig)


def fake_controller(demand, result):
    """Duck-typed stand-in: DecisionLog only reads these attributes."""
    return SimpleNamespace(
        app=SimpleNamespace(classes={"default": None}),
        deployment=SimpleNamespace(cluster_names=["west", "east"]),
        demand_estimate=lambda cls, cluster: demand.get((cls, cluster), 0.0),
        last_result=result,
    )


def fake_result(cache_hit, objective=1.5, fingerprint="fp-1",
                warm_start=False):
    return SimpleNamespace(cache_hit=cache_hit, objective=objective,
                           solve_time=0.001, cache_hits=1 if cache_hit else 0,
                           cache_misses=0 if cache_hit else 1,
                           fingerprint=fingerprint,
                           warm_start=warm_start, warm_build=False,
                           build_time=0.0005,
                           solver_path=("replay" if cache_hit
                                        else "warm" if warm_start
                                        else "cold"))


def rules(west_share) -> RuleSet:
    return RuleSet(rules=[RoutingRule.make(
        "A", "default", "west", {"west": west_share,
                                 "east": 1.0 - west_share})])


# ----------------------------------------------------------------- unit

def test_record_outcomes_and_demand_delta():
    log = DecisionLog()
    first = log.record(10.0, fake_controller(
        {("default", "west"): 100.0}, fake_result(cache_hit=False)),
        rules(0.8))
    assert first.outcome == "solved"
    assert first.epoch == 0
    assert first.demand_total == 100.0
    assert first.demand_delta == 100.0        # vs. the empty previous epoch
    assert first.rules_added == 1 and first.rules_changed == 0

    second = log.record(20.0, fake_controller(
        {("default", "west"): 100.0}, fake_result(cache_hit=True)),
        rules(0.8))
    assert second.outcome == "replayed"
    assert second.demand_delta == 0.0         # plateau
    assert second.rules_added == 0 and second.rules_changed == 0
    assert second.weight_churn == pytest.approx(0.0)

    third = log.record(30.0, fake_controller(
        {("default", "west"): 140.0}, fake_result(cache_hit=False)),
        rules(0.5))
    assert third.outcome == "solved"
    assert third.demand_delta == pytest.approx(40.0)
    assert third.rules_changed == 1
    assert third.weight_churn == pytest.approx(0.6)   # |0.5-0.8| x 2 dests

    assert log.counts() == {"solved": 2, "replayed": 1, "no-demand": 0}
    assert len(log) == 3


def test_record_no_demand_epoch():
    log = DecisionLog()
    decision = log.record(0.0, fake_controller({}, None), None)
    assert decision.outcome == "no-demand"
    assert decision.objective is None and decision.fingerprint is None


def test_jsonl_and_render():
    log = DecisionLog()
    log.record(10.0, fake_controller(
        {("default", "west"): 100.0}, fake_result(cache_hit=False)),
        rules(0.8))
    lines = log.to_jsonl_lines()
    assert len(lines) == 1
    parsed = json.loads(lines[0])
    assert parsed["outcome"] == "solved"
    assert set(parsed) == set(EpochDecision.__dataclass_fields__)
    table = log.render()
    assert "solved" in table and "epochs=1" in table


def test_solver_path_reflects_reuse_ladder():
    log = DecisionLog()
    demand = {("default", "west"): 100.0}
    cold = log.record(10.0, fake_controller(
        demand, fake_result(cache_hit=False)), rules(0.8))
    assert cold.solver_path == "cold"
    warm = log.record(20.0, fake_controller(
        demand, fake_result(cache_hit=False, warm_start=True)), rules(0.7))
    assert warm.solver_path == "warm" and warm.warm
    replay = log.record(30.0, fake_controller(
        demand, fake_result(cache_hit=True)), rules(0.7))
    assert replay.solver_path == "replay"
    empty = log.record(40.0, fake_controller({}, None), None)
    assert empty.solver_path is None


def test_as_dict_keeps_legacy_keys_alongside_solver_path():
    """PR 8 compat bar: consumers keyed on warm/warm_build keep working."""
    log = DecisionLog()
    decision = log.record(10.0, fake_controller(
        {("default", "west"): 100.0},
        fake_result(cache_hit=False, warm_start=True)), rules(0.8))
    payload = decision.as_dict()
    assert payload["warm"] is True            # legacy boolean pair intact
    assert payload["warm_build"] is False
    assert payload["solver_path"] == "warm"   # the new derived field
    json.dumps(payload)


# ----------------------------------------- end-to-end diurnal acceptance

def test_diurnal_run_shows_replays_and_replans():
    """The ISSUE acceptance: >=1 hysteresis skip AND >=1 re-plan."""
    setup = diurnal_control_setup(duration=120.0, epoch=10.0)
    obs = Observability(ObservabilityConfig(decisions=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    log = obs.decisions
    counts = log.counts()
    assert counts["replayed"] >= 1, counts
    assert counts["solved"] >= 1, counts
    epochs = [d.epoch for d in log]
    assert epochs == list(range(len(log)))
    for decision in log:
        if decision.outcome == "replayed":
            assert decision.cache_hits >= 1
        if decision.outcome in ("solved", "replayed"):
            assert decision.fingerprint is not None
    # a replayed epoch ships an identical plan: no routing churn
    replayed = [d for d in log if d.outcome == "replayed"]
    assert all(d.rules_added == d.rules_removed == d.rules_changed == 0
               for d in replayed)
