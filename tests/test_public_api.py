"""Public API integrity: everything advertised is importable and coherent."""

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.sim", "repro.mesh", "repro.core", "repro.baselines",
               "repro.analysis", "repro.experiments"]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (module_name, name)


def test_lazy_sim_attributes():
    import repro.sim
    assert repro.sim.MeshSimulation is not None
    assert repro.sim.TimeoutPolicy is not None
    with pytest.raises(AttributeError):
        repro.sim.NotAThing


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_public_entry_points_have_docstrings():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_top_level_solve_smoke():
    """`repro.solve` is the documented one-call path into the optimizer."""
    from repro import DemandMatrix, DeploymentSpec, solve
    from repro.core.optimizer import TEProblem
    from repro.sim import linear_chain_app, two_region_latency

    app = linear_chain_app(n_services=2, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=4,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 50.0})
    result = solve(TEProblem.from_specs(app, deployment, demand))
    assert result.status == "optimal"


def test_metrics_writer_exports(tmp_path):
    """The exported snapshot writers produce parseable artifacts."""
    import json

    from repro.obs import (MetricsRegistry, write_metrics_json,
                           write_metrics_prometheus)

    registry = MetricsRegistry()
    registry.counter("reqs_total", "requests").inc(7, cluster="west")
    json_path = tmp_path / "metrics.json"
    prom_path = tmp_path / "metrics.prom"
    # 2 = the counter plus the always-present cardinality-guard health
    # gauge (obs_dropped_label_sets)
    assert write_metrics_json(registry, json_path) == 2
    assert write_metrics_prometheus(registry, prom_path) > 0
    assert json.loads(json_path.read_text())
    assert "reqs_total" in prom_path.read_text()


def test_load_balancers_satisfy_protocol():
    """Every shipped balancer implements the exported LoadBalancer protocol."""
    from repro.mesh.loadbalancer import (ConsistentHashBalancer, LoadBalancer,
                                         LeastOutstandingBalancer,
                                         RoundRobinBalancer)

    class FakeEndpoint:
        def __init__(self, name):
            self.name = name
            self.outstanding = 0

    def pick_twice(balancer: LoadBalancer) -> list[str]:
        endpoints = [FakeEndpoint("a"), FakeEndpoint("b")]
        return [balancer.pick(endpoints, key="req").name for _ in range(2)]

    assert pick_twice(RoundRobinBalancer()) == ["a", "b"]
    assert set(pick_twice(LeastOutstandingBalancer())) <= {"a", "b"}
    first, second = pick_twice(ConsistentHashBalancer())
    assert first == second   # same key -> same endpoint


def test_import_order_independence():
    """core <-> mesh <-> sim import in any entry order (no hidden cycles)."""
    import subprocess
    import sys
    for first in ("repro.mesh", "repro.core", "repro.sim",
                  "repro.experiments"):
        outcome = subprocess.run(
            [sys.executable, "-c", f"import {first}; import repro"],
            capture_output=True, text=True)
        assert outcome.returncode == 0, (first, outcome.stderr)
