"""Public API integrity: everything advertised is importable and coherent."""

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.sim", "repro.mesh", "repro.core", "repro.baselines",
               "repro.analysis", "repro.experiments"]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (module_name, name)


def test_lazy_sim_attributes():
    import repro.sim
    assert repro.sim.MeshSimulation is not None
    assert repro.sim.TimeoutPolicy is not None
    with pytest.raises(AttributeError):
        repro.sim.NotAThing


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_public_entry_points_have_docstrings():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_import_order_independence():
    """core <-> mesh <-> sim import in any entry order (no hidden cycles)."""
    import subprocess
    import sys
    for first in ("repro.mesh", "repro.core", "repro.sim",
                  "repro.experiments"):
        outcome = subprocess.run(
            [sys.executable, "-c", f"import {first}; import repro"],
            capture_output=True, text=True)
        assert outcome.returncode == 0, (first, outcome.stderr)
