"""Tests for the whole-program flow analyzer (``repro.devtools.flow``).

Each pass gets a seeded fixture project (must fire) and a clean
counterpart (must stay silent), mirroring ``test_lint.py``; on top of
that the real ``src/repro`` tree must analyze clean — the suite is the
enforcement mechanism for the purity/layering contracts described in
docs/devtools.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import FlowAnalyzer
from repro.devtools.analyze import main, run_analysis
from repro.devtools.flow import Project
from repro.devtools.flow.baseline import Baseline
from repro.devtools.flow.contracts import LayerRule, LayerSpec
from repro.devtools.flow.purity import PurityContract
from repro.devtools.flow.taint import TaintSink

REPO_ROOT = Path(__file__).resolve().parent.parent

OBS_CONTRACT = PurityContract(
    name="obsish-read-only", rule="A01",
    entry_modules=("app.obsish",), forbidden=("app.engine",),
    description="obsish must not write engine state")


def analyze_sources(sources, *, contracts=(), sinks=(), layers=None,
                    consumers=None, select=None):
    project = Project.from_sources(sources, consumers)
    analyzer = FlowAnalyzer(project, purity_contracts=tuple(contracts),
                            taint_sinks=tuple(sinks), layer_spec=layers)
    return analyzer.run(select=select)


def rule_ids(result):
    return {f.rule for f in result.findings}


ENGINE = (
    "__all__ = ['Engine']\n"
    "class Engine:\n"
    "    def __init__(self):\n"
    "        self.count = 0\n"
    "    def bump(self):\n"
    "        self.count += 1\n"
    "    def read(self):\n"
    "        return self.count\n")


class TestPurityPass:
    def test_entrypoint_writing_foreign_state_fires(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/engine.py": ENGINE,
            "app/obsish.py": (
                "from .engine import Engine\n"
                "__all__ = ['collect']\n"
                "def collect(engine: Engine):\n"
                "    engine.bump()\n"       # transitive write to Engine.count
                "    return engine.read()\n"),
        }, contracts=(OBS_CONTRACT,), select=frozenset({"A01"}))
        assert rule_ids(result) == {"A01"}
        (finding,) = result.findings
        assert "Engine.count" in finding.message
        assert finding.path == "app/obsish.py"

    def test_read_only_entrypoint_is_clean(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/engine.py": ENGINE,
            "app/obsish.py": (
                "from .engine import Engine\n"
                "__all__ = ['collect']\n"
                "def collect(engine: Engine):\n"
                "    return engine.read()\n"),
        }, contracts=(OBS_CONTRACT,), select=frozenset({"A01"}))
        assert result.findings == []

    def test_mutating_a_fresh_object_is_not_a_write(self):
        # building an Engine locally and bumping it is internal state,
        # not an observable side effect on the caller's world
        result = analyze_sources({
            "app/__init__.py": "",
            "app/engine.py": ENGINE,
            "app/obsish.py": (
                "from .engine import Engine\n"
                "__all__ = ['probe']\n"
                "def probe():\n"
                "    scratch = Engine()\n"
                "    scratch.bump()\n"
                "    return scratch.read()\n"),
        }, contracts=(OBS_CONTRACT,), select=frozenset({"A01"}))
        assert result.findings == []

    def test_twin_isolation_contract_uses_its_own_rule_id(self):
        contract = PurityContract(
            name="twin", rule="A02", entry_modules=("app.chaosish",),
            forbidden=("app.scenario",), description="no scenario writes")
        result = analyze_sources({
            "app/__init__.py": "",
            "app/scenario.py": (
                "__all__ = ['Scenario']\n"
                "class Scenario:\n"
                "    def __init__(self):\n"
                "        self.demand = {}\n"),
            "app/chaosish.py": (
                "from .scenario import Scenario\n"
                "__all__ = ['twin_run']\n"
                "def twin_run(scenario: Scenario):\n"
                "    scenario.demand['west'] = 0.0\n"),
        }, contracts=(contract,), select=frozenset({"A02"}))
        assert rule_ids(result) == {"A02"}


class TestTaintPass:
    SINK = TaintSink("app.sched.Scheduler.schedule", "event scheduling")

    def test_cross_module_clock_taint_reaches_scheduler(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/clock.py": (
                "import time\n"
                "__all__ = ['stamp']\n"
                "def stamp():\n"
                "    return time.time()\n"),
            "app/sched.py": (
                "__all__ = ['Scheduler']\n"
                "class Scheduler:\n"
                "    def schedule(self, when):\n"
                "        return when\n"),
            "app/driver.py": (
                "from .clock import stamp\n"
                "from .sched import Scheduler\n"
                "__all__ = ['drive']\n"
                "def drive(sched: Scheduler):\n"
                "    sched.schedule(stamp())\n"),
        }, sinks=(self.SINK,), select=frozenset({"A03"}))
        assert rule_ids(result) == {"A03"}
        (finding,) = result.findings
        assert "wall-clock" in finding.message
        assert finding.path == "app/driver.py"

    def test_sim_time_argument_is_clean(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/sched.py": (
                "__all__ = ['Scheduler']\n"
                "class Scheduler:\n"
                "    def schedule(self, when):\n"
                "        return when\n"),
            "app/driver.py": (
                "from .sched import Scheduler\n"
                "__all__ = ['drive']\n"
                "def drive(sched: Scheduler, now: float):\n"
                "    sched.schedule(now + 1.0)\n"),
        }, sinks=(self.SINK,), select=frozenset({"A03"}))
        assert result.findings == []


class TestContractPasses:
    LAYERS = LayerSpec(rules=(LayerRule("app.low", ("app.high",)),))

    def test_layering_violation_fires(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/high.py": "__all__ = []\n",
            "app/low.py": "import app.high\n__all__ = []\n",
        }, layers=self.LAYERS, select=frozenset({"A04"}))
        assert rule_ids(result) == {"A04"}

    def test_layering_deferred_import_exempt_when_allowed(self):
        layers = LayerSpec(rules=(
            LayerRule("app.low", ("app.high",), allow_deferred=True),))
        result = analyze_sources({
            "app/__init__.py": "",
            "app/high.py": "__all__ = []\n",
            "app/low.py": ("__all__ = ['go']\n"
                           "def go():\n"
                           "    import app.high\n"
                           "    return app.high\n"),
        }, layers=layers, select=frozenset({"A04"}))
        assert result.findings == []

    def test_import_cycle_fires(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/alpha.py": "from . import beta\n__all__ = []\n",
            "app/beta.py": "from . import alpha\n__all__ = []\n",
        }, select=frozenset({"A05"}))
        assert rule_ids(result) == {"A05"}
        (finding,) = result.findings
        assert "app.alpha" in finding.message
        assert "app.beta" in finding.message

    def test_type_checking_import_breaks_no_cycle(self):
        # `if TYPE_CHECKING:` imports never execute at import time
        result = analyze_sources({
            "app/__init__.py": "",
            "app/alpha.py": ("from typing import TYPE_CHECKING\n"
                             "if TYPE_CHECKING:\n"
                             "    from . import beta\n"
                             "__all__ = []\n"),
            "app/beta.py": "from . import alpha\n__all__ = []\n",
        }, select=frozenset({"A05"}))
        assert result.findings == []

    def test_dead_export_fires_and_used_export_does_not(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/api.py": ("__all__ = ['used', 'dead']\n"
                           "def used():\n"
                           "    return 1\n"
                           "def dead():\n"
                           "    return 2\n"),
        }, consumers={
            "tests/test_api.py": ("from app.api import used\n"
                                  "assert used() == 1\n"),
        }, select=frozenset({"A06"}))
        assert rule_ids(result) == {"A06"}
        (finding,) = result.findings
        assert "`app.api.dead`" in finding.message
        assert "dead" in finding.message


class TestSuppressionAndBaseline:
    def test_inline_suppression_silences_a_finding(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/engine.py": ENGINE,
            "app/obsish.py": (
                "from .engine import Engine\n"
                "__all__ = ['collect']\n"
                # purity findings anchor at the entrypoint's def line
                "def collect(engine: Engine):   # lint: ignore[A01]\n"
                "    engine.bump()\n"),
        }, contracts=(OBS_CONTRACT,), select=frozenset({"A01"}))
        assert result.findings == []
        assert result.suppressed == 1

    def test_baseline_grandfathers_and_detects_stale(self):
        sources = {
            "app/__init__.py": "",
            "app/engine.py": ENGINE,
            "app/obsish.py": (
                "from .engine import Engine\n"
                "__all__ = ['collect']\n"
                "def collect(engine: Engine):\n"
                "    engine.bump()\n"),
        }
        project = Project.from_sources(sources)
        analyzer = FlowAnalyzer(project, purity_contracts=(OBS_CONTRACT,),
                                taint_sinks=(), layer_spec=None)
        first = analyzer.run(select=frozenset({"A01"}))
        baseline = Baseline.from_findings(first.findings)

        second = analyzer.run(select=frozenset({"A01"}),
                              baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1

        fixed = dict(sources)
        fixed["app/obsish.py"] = (
            "from .engine import Engine\n"
            "__all__ = ['collect']\n"
            "def collect(engine: Engine):\n"
            "    return engine.read()\n")
        clean_analyzer = FlowAnalyzer(
            Project.from_sources(fixed), purity_contracts=(OBS_CONTRACT,),
            taint_sinks=(), layer_spec=None)
        third = clean_analyzer.run(select=frozenset({"A01"}),
                                   baseline=baseline)
        assert third.findings == []
        assert len(third.stale_baseline) == 1


def _write_fixture_tree(root: Path) -> Path:
    pkg = root / "src" / "app"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "alpha.py").write_text("from . import beta\n__all__ = []\n")
    (pkg / "beta.py").write_text("from . import alpha\n__all__ = []\n")
    return root / "src"


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("A01", "A03", "A06"):
            assert rule_id in out

    def test_unknown_select_is_usage_error(self, capsys):
        assert main(["--select", "A99"]) == 2
        assert "A99" in capsys.readouterr().err

    def test_findings_exit_nonzero_and_baseline_adoption(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = _write_fixture_tree(tmp_path)
        assert main([str(src), "--select", "A05"]) == 1
        assert "import cycle" in capsys.readouterr().out

        baseline = tmp_path / "analyze-baseline.json"
        assert main([str(src), "--select", "A05",
                     "--write-baseline"]) == 0
        assert baseline.exists()
        # the default baseline is picked up and grandfathers the cycle
        assert main([str(src), "--select", "A05"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_json_report_artifact(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        src = _write_fixture_tree(tmp_path)
        report = tmp_path / "report.json"
        assert main([str(src), "--select", "A05", "--format", "json",
                     "--report", str(report)]) == 1
        payload = json.loads(report.read_text())
        assert payload["error_count"] == 1
        assert payload["findings"][0]["rule"] == "A05"
        assert payload["stats"]["modules"] == 3
        # stdout carries the same payload
        assert json.loads(capsys.readouterr().out)["error_count"] == 1


class TestRealTree:
    def test_src_analyzes_clean(self):
        """The committed tree holds every contract the analyzer checks."""
        _, result = run_analysis([str(REPO_ROOT / "src")])
        assert result.parse_errors == []
        messages = [f.render() for f in result.findings]
        assert messages == []
        assert result.stats["modules"] > 50

    def test_changed_only_scoping_drops_unchanged_findings(self):
        result = analyze_sources({
            "app/__init__.py": "",
            "app/alpha.py": "from . import beta\n__all__ = []\n",
            "app/beta.py": "from . import alpha\n__all__ = []\n",
        }, select=frozenset({"A05"}))
        assert rule_ids(result) == {"A05"}
        project = Project.from_sources({
            "app/__init__.py": "",
            "app/alpha.py": "from . import beta\n__all__ = []\n",
            "app/beta.py": "from . import alpha\n__all__ = []\n",
        })
        analyzer = FlowAnalyzer(project, purity_contracts=(),
                                taint_sinks=())
        scoped = analyzer.run(select=frozenset({"A05"}),
                              changed_paths={"app/other.py"})
        assert scoped.findings == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
