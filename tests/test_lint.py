"""Tests for the determinism lint pass (``repro.devtools.lint``).

Each rule gets a seeded violation fixture (must fire) and a clean
counterpart (must stay silent); on top of that the whole ``src/repro``
tree must lint clean — the suite is the enforcement mechanism for the
determinism discipline described in docs/devtools.md.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import LintConfig, Linter, Severity, lint_paths
from repro.devtools.lint import main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: virtual paths that put a fixture inside each enforcement scope
SIM_PATH = "src/repro/sim/fixture.py"
MESH_PATH = "src/repro/mesh/fixture.py"
ANALYSIS_PATH = "src/repro/analysis/fixture.py"
TEST_PATH = "tests/fixture.py"


def rule_ids(source: str, path: str = SIM_PATH) -> set[str]:
    findings = Linter().lint_source(source, path)
    return {f.rule for f in findings}


# ------------------------------------------------------- per-rule fixtures

# (rule, virtual path, violating snippet, clean snippet)
CASES = [
    ("D01", SIM_PATH,
     "import numpy as np\n"
     "__all__ = []\n"
     "def _draw(rngs):\n"
     "    return np.random.default_rng(0).random()\n",
     "__all__ = []\n"
     "def _draw(rngs):\n"
     "    return rngs.stream('arrivals').random()\n"),
    ("D02", SIM_PATH,
     "import time\n"
     "__all__ = []\n"
     "def _stamp():\n"
     "    return time.time()\n",
     "__all__ = []\n"
     "def _stamp(sim):\n"
     "    return sim.now\n"),
    ("D03", SIM_PATH,
     "__all__ = []\n"
     "def _order(clusters):\n"
     "    return [c for c in set(clusters)]\n",
     "__all__ = []\n"
     "def _order(clusters):\n"
     "    return [c for c in sorted(set(clusters))]\n"),
    ("D04", SIM_PATH,
     "__all__ = []\n"
     "def _same(span, sim):\n"
     "    return span.end_time == sim.now\n",
     "__all__ = []\n"
     "def _same(span, sim):\n"
     "    return abs(span.end_time - sim.now) < 1e-12\n"),
    ("D05", SIM_PATH,
     "__all__ = []\n"
     "def _collect(out=[]):\n"
     "    return out\n",
     "__all__ = []\n"
     "def _collect(out=None):\n"
     "    return out if out is not None else []\n"),
    ("D06", SIM_PATH,
     "__all__ = []\n"
     "_SEEN = []\n"
     "def _handler(event):\n"
     "    _SEEN.append(event)\n",
     "__all__ = []\n"
     "def _handler(state, event):\n"
     "    state.seen.append(event)\n"),
    ("D07", SIM_PATH,
     "__all__ = []\n"
     "def handler(event):\n"
     "    return event\n",
     "__all__ = ['handler']\n"
     "def handler(event):\n"
     "    return event\n"),
    ("D08", SIM_PATH,
     "__all__ = []\n"
     "def _report(stats):\n"
     "    print(stats)\n",
     "__all__ = []\n"
     "def _report(stats):\n"
     "    return str(stats)\n"),
]


@pytest.mark.parametrize("rule,path,bad,good",
                         CASES, ids=[c[0] for c in CASES])
def test_rule_catches_violation_and_passes_clean(rule, path, bad, good):
    assert rule in rule_ids(bad, path)
    assert rule not in rule_ids(good, path)


# ------------------------------------------------------- rule scope details

def test_d01_flags_stdlib_random_import():
    assert "D01" in rule_ids("__all__ = []\nimport random\n")


def test_d01_allows_rng_module_itself():
    source = "import numpy as np\n__all__ = []\ng = np.random.default_rng(0)\n"
    assert "D01" not in rule_ids(source, "src/repro/sim/rng.py")


def test_d01_allows_seeded_default_rng_in_tests():
    source = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert "D01" not in rule_ids(source, TEST_PATH)


def test_d01_flags_unseeded_default_rng_in_tests():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert "D01" in rule_ids(source, TEST_PATH)


def test_d02_allows_wall_clock_in_analysis():
    source = "import time\n__all__ = []\ndef _t():\n    return time.time()\n"
    assert "D02" not in rule_ids(source, ANALYSIS_PATH)
    assert "D02" in rule_ids(source, MESH_PATH)


def test_d03_flags_set_union_iteration():
    source = ("__all__ = []\n"
              "def _merge(a, b):\n"
              "    return {k: 1.0 for k in set(a) | set(b)}\n")
    assert "D03" in rule_ids(source)


def test_d04_ignores_inequalities():
    source = ("__all__ = []\n"
              "def _later(span, sim):\n"
              "    return span.end_time >= sim.now\n")
    assert "D04" not in rule_ids(source)


def test_d06_flags_module_level_counter_consumption():
    # the request-id leak this repo actually shipped: a process-global
    # itertools.count drawn from event code
    source = ("import itertools\n"
              "__all__ = []\n"
              "_IDS = itertools.count(1)\n"
              "def _emit():\n"
              "    return next(_IDS)\n")
    assert "D06" in rule_ids(source)


def test_d06_flags_global_statement():
    source = ("__all__ = []\n"
              "_COUNT = 0\n"
              "def _bump():\n"
              "    global _COUNT\n"
              "    _COUNT = 1\n")
    assert "D06" in rule_ids(source)


def test_d07_accepts_lazy_module_getattr():
    source = ("__all__ = ['Lazy']\n"
              "def __getattr__(name):\n"
              "    raise AttributeError(name)\n")
    assert "D07" not in rule_ids(source)


def test_d08_allows_cli_module():
    source = "__all__ = []\ndef _say():\n    print('hi')\n"
    assert "D08" not in rule_ids(source, "src/repro/cli.py")


def test_d08_flags_file_writes_in_library_code():
    source = ("__all__ = []\n"
              "def _dump(path, rows):\n"
              "    with open(path, 'w') as handle:\n"
              "        handle.writelines(rows)\n")
    assert "D08" in rule_ids(source)
    # append and exclusive-create modes are writes too
    assert "D08" in rule_ids("__all__ = []\n"
                             "def _log(path):\n"
                             "    open(path, 'a')\n")
    # keyword form
    assert "D08" in rule_ids("__all__ = []\n"
                             "def _dump(path):\n"
                             "    open(path, mode='x')\n")


def test_d08_allows_file_reads():
    source = ("__all__ = []\n"
              "def _load(path):\n"
              "    with open(path) as handle:\n"
              "        return handle.read()\n")
    assert "D08" not in rule_ids(source)
    assert "D08" not in rule_ids("__all__ = []\n"
                                 "def _load(path):\n"
                                 "    return open(path, 'r').read()\n")
    # a non-literal mode cannot be judged statically: stay silent
    assert "D08" not in rule_ids("__all__ = []\n"
                                 "def _open(path, mode):\n"
                                 "    return open(path, mode)\n")


def test_d08_flags_pathlib_write_helpers():
    source = ("__all__ = []\n"
              "def _dump(path, text):\n"
              "    path.write_text(text)\n")
    assert "D08" in rule_ids(source)
    assert "D08" in rule_ids("__all__ = []\n"
                             "def _dump(path, blob):\n"
                             "    path.write_bytes(blob)\n")


def test_obs_package_lints_clean():
    """The observability layer itself obeys the lint discipline.

    Its exporters carry per-line D08 rationale suppressions; everything
    else (tracer, analyzer, metrics, decisions, profiler) must be clean
    with no suppressions needed.
    """
    findings = lint_paths([REPO_ROOT / "src" / "repro" / "obs"])
    assert findings == [], "\n".join(f.render() for f in findings)


# ------------------------------------------------- suppressions & severity

def test_inline_suppression_silences_one_rule():
    source = ("import time\n"
              "__all__ = []\n"
              "def _stamp():\n"
              "    return time.time()   # lint: ignore[D02]\n")
    assert "D02" not in rule_ids(source)


def test_blanket_suppression_silences_everything():
    source = ("__all__ = []\n"
              "def _collect(out=[]):   # lint: ignore\n"
              "    return out\n")
    assert rule_ids(source) == set()


def test_suppression_is_per_line():
    source = ("import time\n"
              "__all__ = []\n"
              "# lint: ignore[D02]\n"
              "def _stamp():\n"
              "    return time.time()\n")
    assert "D02" in rule_ids(source)


def test_severity_config_downgrades_and_disables(tmp_path):
    source = ("import time\n"
              "__all__ = []\n"
              "def _stamp():\n"
              "    return time.time()\n")
    config = LintConfig(severities={"D02": Severity.WARNING})
    findings = Linter(config).lint_source(source, SIM_PATH)
    d02 = [f for f in findings if f.rule == "D02"]
    assert d02 and all(f.severity is Severity.WARNING for f in d02)

    config = LintConfig(severities={"D02": Severity.OFF})
    findings = Linter(config).lint_source(source, SIM_PATH)
    assert not [f for f in findings if f.rule == "D02"]


def test_severity_config_loads_from_json(tmp_path):
    path = tmp_path / "lint.json"
    path.write_text(json.dumps({"severities": {"D04": "warning"}}))
    config = LintConfig.from_file(path)
    assert config.severity_for("D04", Severity.ERROR) is Severity.WARNING
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"severities": {"D04": "loud"}}))
    with pytest.raises(ValueError, match="invalid severity"):
        LintConfig.from_file(bad)


def test_select_restricts_rules():
    source = ("import time\n"
              "__all__ = []\n"
              "def _both(out=[]):\n"
              "    return time.time()\n")
    config = LintConfig(select=frozenset({"D05"}))
    findings = Linter(config).lint_source(source, SIM_PATH)
    assert {f.rule for f in findings} == {"D05"}


# ------------------------------------------------------------- CLI surface

def test_cli_exit_codes_and_json(tmp_path, capsys):
    victim = tmp_path / "src" / "repro" / "sim" / "bad.py"
    victim.parent.mkdir(parents=True)
    victim.write_text("__all__ = []\n"
                      "def _collect(out=[]):\n"
                      "    return out\n")
    assert main([str(victim), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["error_count"] >= 1
    assert payload["findings"][0]["rule"] == "D05"

    victim.write_text("__all__ = []\n")
    assert main([str(victim)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D01", "D04", "D08"):
        assert rule_id in out


def test_cli_reports_parse_errors(tmp_path, capsys):
    victim = tmp_path / "broken.py"
    victim.write_text("def oops(:\n")
    assert main([str(victim)]) == 1
    assert "parse error" in capsys.readouterr().out


def test_cli_rejects_nonexistent_path(tmp_path, capsys):
    assert main([str(tmp_path / "no-such-dir")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_cli_rejects_unknown_select_id(capsys):
    assert main(["--select", "D99", str(REPO_ROOT / "src" / "repro")]) == 2
    assert "unknown rule id(s)" in capsys.readouterr().err


def test_cli_rejects_invalid_config_cleanly(tmp_path, capsys):
    cfg = tmp_path / "lint.json"
    cfg.write_text('{"severities": {"D01": "loud"}}')
    assert main(["--config", str(cfg), str(REPO_ROOT / "src")]) == 2
    err = capsys.readouterr().err
    assert "invalid severity" in err and "Traceback" not in err


def test_module_entry_point_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT, env=env)
    assert proc.returncode == 0
    assert "D01" in proc.stdout


# ---------------------------------------------------- the tree stays clean

def test_src_repro_lints_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_tests_and_benchmarks_lint_clean():
    findings = lint_paths([REPO_ROOT / "tests", REPO_ROOT / "benchmarks"])
    assert findings == [], "\n".join(f.render() for f in findings)


# ------------------------------------------------- suppression audit (SUP)

def test_audit_flags_unused_suppression():
    findings = Linter(audit_suppressions=True).lint_source(
        "__all__ = []\n"
        "def _f(x):\n"
        "    return x + 1   # lint: ignore[D05]\n", SIM_PATH)
    assert [f.rule for f in findings] == ["SUP"]
    assert findings[0].severity is Severity.WARNING
    assert "D05" in findings[0].message


def test_audit_keeps_quiet_about_used_suppression():
    findings = Linter(audit_suppressions=True).lint_source(
        "__all__ = []\n"
        "def _collect(out=[]):   # lint: ignore[D05]\n"
        "    return out\n", SIM_PATH)
    assert findings == []


def test_audit_ignores_markers_for_rules_not_running():
    # an analyzer suppression (Axx) must not be flagged by the lint audit,
    # nor a Dxx marker when --select excludes that rule
    config = LintConfig()
    config.select = frozenset({"D01"})
    findings = Linter(config, audit_suppressions=True).lint_source(
        "__all__ = []\n"
        "from x import y   # lint: ignore[A04]\n"
        "def _f(out=[]):   # lint: ignore[D05]\n"
        "    return out\n", SIM_PATH)
    assert findings == []


def test_audit_flags_unused_blanket_marker():
    findings = Linter(audit_suppressions=True).lint_source(
        "__all__ = []\n"
        "X = 1   # lint: ignore\n", SIM_PATH)
    assert [f.rule for f in findings] == ["SUP"]
    assert "all rules" in findings[0].message


def test_cli_audit_suppressions_flag(tmp_path, capsys):
    victim = tmp_path / "src" / "repro" / "sim" / "mod.py"
    victim.parent.mkdir(parents=True)
    victim.write_text("__all__ = []\n"
                      "X = 1   # lint: ignore[D05]\n")
    assert main([str(victim)]) == 0                      # audit off: silent
    capsys.readouterr()
    assert main([str(victim), "--audit-suppressions"]) == 0   # warning only
    out = capsys.readouterr().out
    assert "SUP" in out and "unused suppression" in out


def test_repo_tree_has_no_unused_suppressions():
    linter = Linter(audit_suppressions=True)
    findings = linter.lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks",
         REPO_ROOT / "examples"])
    assert findings == [], "\n".join(f.render() for f in findings)


# --------------------------------------------------------- --changed-only

def _git(tmp_path, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *argv], cwd=tmp_path, check=True, capture_output=True)


def test_cli_changed_only_scopes_to_dirty_files(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    clean = pkg / "clean.py"
    dirty = pkg / "dirty.py"
    clean.write_text("__all__ = []\n"
                     "def _bad(out=[]):\n"
                     "    return out\n")
    dirty.write_text("__all__ = []\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    dirty.write_text("__all__ = []\n"
                     "def _worse(out=[]):\n"
                     "    return out\n")

    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        # full run sees both files' findings; scoped run only dirty.py
        assert main([str(tmp_path / "src")]) == 1
        full = capsys.readouterr().out
        assert "clean.py" in full and "dirty.py" in full
        assert main([str(tmp_path / "src"), "--changed-only"]) == 1
        scoped = capsys.readouterr().out
        assert "dirty.py" in scoped and "clean.py" not in scoped
    finally:
        os.chdir(cwd)


def test_cli_changed_only_bad_base_is_usage_error(tmp_path, capsys):
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "m.py").write_text("__all__ = []\n")
    _git(tmp_path, "init", "-q")
    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        assert main([str(pkg), "--changed-only", "no-such-ref"]) == 2
        assert "no-such-ref" in capsys.readouterr().err
    finally:
        os.chdir(cwd)
