"""Tests for deployment topologies and the GCP latency matrix."""

import pytest

from repro.sim.network import LatencyMatrix
from repro.sim.topology import (GCP_REGIONS, ClusterSpec, DeploymentSpec,
                                gcp_four_region_latency, two_region_latency)


def test_gcp_matrix_matches_paper_rtts():
    lat = gcp_four_region_latency()
    # §4.2: OR-UT 30ms, UT-IOW 20ms, IOW-SC 35ms, OR-SC 66ms, OR-IOW 37ms
    assert lat.rtt("OR", "UT") == pytest.approx(0.030)
    assert lat.rtt("UT", "IOW") == pytest.approx(0.020)
    assert lat.rtt("IOW", "SC") == pytest.approx(0.035)
    assert lat.rtt("OR", "SC") == pytest.approx(0.066)
    assert lat.rtt("OR", "IOW") == pytest.approx(0.037)


def test_gcp_ut_sc_estimate_configurable():
    assert gcp_four_region_latency().rtt("UT", "SC") == pytest.approx(0.055)
    assert gcp_four_region_latency(ut_sc_rtt_ms=60.0).rtt(
        "UT", "SC") == pytest.approx(0.060)


def test_gcp_ut_is_nearest_to_both_or_and_iow():
    # the premise of the §4.2 greedy pathology
    lat = gcp_four_region_latency()
    for src in ("OR", "IOW"):
        others = [c for c in GCP_REGIONS if c != src]
        nearest = min(others, key=lambda c: lat.one_way(src, c))
        assert nearest == "UT"


def test_two_region_latency():
    lat = two_region_latency(25.0)
    assert lat.one_way("west", "east") == pytest.approx(0.025)


def test_cluster_spec_has():
    spec = ClusterSpec("west", {"A": 2, "B": 0})
    assert spec.has("A")
    assert not spec.has("B")
    assert not spec.has("C")


def test_cluster_spec_negative_replicas_rejected():
    with pytest.raises(ValueError):
        ClusterSpec("west", {"A": -1})


def test_deployment_clusters_with_partial_replication():
    dep = DeploymentSpec(
        clusters=[ClusterSpec("west", {"FR": 1}),
                  ClusterSpec("east", {"FR": 1, "DB": 2})],
        latency=two_region_latency(10.0))
    assert dep.clusters_with("FR") == ["west", "east"]
    assert dep.clusters_with("DB") == ["east"]
    assert dep.clusters_with("nope") == []


def test_deployment_replicas_lookup():
    dep = DeploymentSpec(
        clusters=[ClusterSpec("west", {"A": 3})],
        latency=LatencyMatrix(["west"], {}))
    assert dep.replicas("A", "west") == 3
    assert dep.replicas("B", "west") == 0


def test_deployment_duplicate_cluster_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        DeploymentSpec(
            clusters=[ClusterSpec("west", {}), ClusterSpec("west", {})],
            latency=two_region_latency(10.0))


def test_deployment_cluster_missing_from_latency_rejected():
    with pytest.raises(ValueError, match="missing from the latency"):
        DeploymentSpec(
            clusters=[ClusterSpec("nowhere", {})],
            latency=two_region_latency(10.0))


def test_uniform_deployment():
    dep = DeploymentSpec.uniform(["A", "B"], ["west", "east"], replicas=4,
                                 latency=two_region_latency(10.0))
    assert dep.replicas("A", "west") == 4
    assert dep.replicas("B", "east") == 4
    assert dep.services() == ["A", "B"]


def test_unknown_cluster_lookup():
    dep = DeploymentSpec.uniform(["A"], ["west", "east"], 1,
                                 two_region_latency(10.0))
    with pytest.raises(KeyError):
        dep.cluster("north")
