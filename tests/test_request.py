"""Tests for the request/span/trace data model."""

import pytest

from repro.sim.request import (Request, RequestAttributes, Span, Trace,
                               new_request_id)


def test_request_ids_unique():
    ids = {new_request_id() for _ in range(100)}
    assert len(ids) == 100


def test_attributes_header_lookup_case_insensitive():
    attrs = RequestAttributes.make("S", headers={"X-User-Tier": "gold"})
    assert attrs.header("x-user-tier") == "gold"
    assert attrs.header("missing") is None
    assert attrs.header("missing", "dflt") == "dflt"


def test_attributes_hashable_and_equal():
    a = RequestAttributes.make("S", "GET", "/x", {"k": "v"})
    b = RequestAttributes.make("S", "GET", "/x", {"k": "v"})
    assert a == b
    assert hash(a) == hash(b)


def make_request():
    return Request(request_id=1,
                   attributes=RequestAttributes.make("S1"),
                   ingress_cluster="west", arrival_time=10.0)


def test_latency_requires_completion():
    request = make_request()
    assert not request.done
    with pytest.raises(ValueError):
        _ = request.latency
    request.completion_time = 10.25
    assert request.done
    assert request.latency == pytest.approx(0.25)


def make_span(**kwargs):
    defaults = dict(request_id=1, traffic_class="default", service="S1",
                    cluster="west", caller_service=None,
                    caller_cluster="west", enqueue_time=1.0, start_time=1.2,
                    end_time=1.5, exec_time=0.1)
    defaults.update(kwargs)
    return Span(**defaults)


def test_span_timing_properties():
    span = make_span()
    assert span.queue_wait == pytest.approx(0.2)
    assert span.total_time == pytest.approx(0.5)


def test_span_remote_detection():
    assert not make_span().remote
    assert make_span(caller_cluster="east").remote
    assert not make_span(caller_cluster=None).remote


def test_trace_rejects_foreign_span():
    trace = Trace(request_id=1)
    with pytest.raises(ValueError):
        trace.add(make_span(request_id=2))


def test_trace_queries():
    trace = Trace(request_id=1)
    trace.add(make_span(service="A"))
    trace.add(make_span(service="B", caller_cluster="east"))
    trace.add(make_span(service="B"))
    assert len(trace.spans_for("B")) == 2
    assert trace.cross_cluster_hops == 1
