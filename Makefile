# SLATE reproduction — convenience targets
PYTHON ?= python3

.PHONY: install test lint analyze check bench bench-smoke bench-diff \
	examples figures clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src tests benchmarks \
		examples --audit-suppressions

# whole-program flow analyzer: purity proofs, determinism taint,
# architecture contracts (docs/devtools.md); report lands in
# analyze-report.json for the CI artifact
analyze:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.analyze src \
		--report analyze-report.json

# lint + analyzer + tier-1 tests with runtime invariant checks enabled
check: lint analyze
	REPRO_DEBUG_INVARIANTS=1 PYTHONPATH=src $(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# fast perf subset (~90s): regenerates benchmarks/results/BENCH_*.json
# (docs/performance.md documents the keys)
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_engine.py \
		benchmarks/bench_sweep.py benchmarks/bench_obs.py \
		benchmarks/bench_chaos.py benchmarks/bench_devtools.py \
		benchmarks/bench_optimizer.py benchmarks/bench_fluid.py \
		--benchmark-only -q

# regression-gate freshly regenerated BENCH_*.json against a snapshot of
# the committed baselines (copy benchmarks/results aside before bench-smoke
# rewrites it, then point BASELINES at the copy). events/sec keys fail on a
# >25% drop; wall-clock keys get a band wide enough for runner noise.
# On failure a provenance flight-recorder dump of the chaos scenario is
# generated into diff-reports/ so CI uploads it next to the diff reports.
BASELINES ?= /tmp/bench-baselines
bench-diff:
	@mkdir -p diff-reports; status=0; \
	for bench in benchmarks/results/BENCH_*.json; do \
		name=$$(basename $$bench); \
		PYTHONPATH=src $(PYTHON) -m repro obs diff \
			"$(BASELINES)/$$name" "$$bench" \
			--rel-tolerance 0.25 \
			--tolerance '*_seconds=5.0' \
			--tolerance '*speedup*=5.0' \
			--tolerance '*_rel_error=1.0' \
			--report "diff-reports/$${name%.json}.diff.json" \
			|| status=1; \
	done; \
	if [ $$status -ne 0 ]; then \
		PYTHONPATH=src $(PYTHON) -m repro obs explain default \
			--scenario chaos --duration 30 \
			--dump diff-reports/flight-dump.jsonl \
			-o diff-reports/provenance.jsonl \
			> diff-reports/explain.txt || true; \
	fi; exit $$status

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

figures:
	$(PYTHON) -m repro figure fig3
	$(PYTHON) -m repro figure fig4
	$(PYTHON) -m repro figure fig6a
	$(PYTHON) -m repro figure fig6b
	$(PYTHON) -m repro figure fig6c
	$(PYTHON) -m repro figure fig6d

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
