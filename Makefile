# SLATE reproduction — convenience targets
PYTHON ?= python3

.PHONY: install test lint check bench bench-smoke examples figures clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src tests benchmarks examples

# lint + tier-1 tests with runtime invariant checks enabled
check: lint
	REPRO_DEBUG_INVARIANTS=1 PYTHONPATH=src $(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# <60s perf subset: regenerates benchmarks/results/BENCH_*.json
# (docs/performance.md documents the keys)
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_engine.py \
		benchmarks/bench_sweep.py benchmarks/bench_obs.py \
		--benchmark-only -q

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

figures:
	$(PYTHON) -m repro figure fig3
	$(PYTHON) -m repro figure fig4
	$(PYTHON) -m repro figure fig6a
	$(PYTHON) -m repro figure fig6b
	$(PYTHON) -m repro figure fig6c
	$(PYTHON) -m repro figure fig6d

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
