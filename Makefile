# SLATE reproduction — convenience targets
PYTHON ?= python3

.PHONY: install test bench examples figures clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

figures:
	$(PYTHON) -m repro figure fig3
	$(PYTHON) -m repro figure fig4
	$(PYTHON) -m repro figure fig6a
	$(PYTHON) -m repro figure fig6b
	$(PYTHON) -m repro figure fig6c
	$(PYTHON) -m repro figure fig6d

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
